// Tests for the dense linear algebra substrate: parameterized-precision
// GEMM against a reference implementation, the BF16 accuracy ladder, the
// Hermitian Jacobi eigensolver, and orthonormalization.

#include <gtest/gtest.h>

#include <complex>
#include <tuple>

#include "mlmd/common/aligned.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/common/rng.hpp"
#include "mlmd/common/workspace.hpp"
#include "mlmd/la/eig.hpp"
#include "mlmd/la/gemm.hpp"
#include "mlmd/la/matrix.hpp"
#include "mlmd/la/ortho.hpp"
#include "mlmd/par/thread_pool.hpp"
#include "mlmd/simd/simd.hpp"
#include "simd_targets.hpp"

namespace {

using namespace mlmd::la;
using cd = std::complex<double>;
using cf = std::complex<float>;

template <class T>
void fill_random(Matrix<T>& m, mlmd::Rng& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if constexpr (std::is_arithmetic_v<T>)
      m.data()[i] = static_cast<T>(rng.normal());
    else
      m.data()[i] = T(static_cast<typename T::value_type>(rng.normal()),
                      static_cast<typename T::value_type>(rng.normal()));
  }
}

/// Reference triple-loop GEMM.
template <class T>
Matrix<T> ref_gemm(Trans ta, Trans tb, T alpha, const Matrix<T>& a,
                   const Matrix<T>& b, T beta, const Matrix<T>& c0) {
  auto opa = [&](std::size_t i, std::size_t j) -> T {
    if (ta == Trans::kN) return a(i, j);
    T v = a(j, i);
    if constexpr (!std::is_arithmetic_v<T>)
      if (ta == Trans::kC) v = std::conj(v);
    return v;
  };
  auto opb = [&](std::size_t i, std::size_t j) -> T {
    if (tb == Trans::kN) return b(i, j);
    T v = b(j, i);
    if constexpr (!std::is_arithmetic_v<T>)
      if (tb == Trans::kC) v = std::conj(v);
    return v;
  };
  const std::size_t m = ta == Trans::kN ? a.rows() : a.cols();
  const std::size_t k = ta == Trans::kN ? a.cols() : a.rows();
  const std::size_t n = tb == Trans::kN ? b.cols() : b.rows();
  Matrix<T> c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      T acc{};
      for (std::size_t p = 0; p < k; ++p) acc += opa(i, p) * opb(p, j);
      c(i, j) = alpha * acc + beta * c0(i, j);
    }
  return c;
}

// ---- parameterized GEMM sweep over shapes and trans combinations --------
//
// Every case runs once per simd dispatch target (scalar plus whichever
// intrinsic ISAs this host supports), so the shape/trans edge paths are
// exercised against each micro-kernel tile geometry.

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
};

class GemmSweep
    : public ::testing::TestWithParam<std::tuple<GemmCase, mlmd::simd::Target>> {
protected:
  void SetUp() override {
    prev_ = mlmd::simd::active_target();
    const auto t = std::get<1>(GetParam());
    if (!mlmd::simd::target_supported(t))
      GTEST_SKIP() << "simd target '" << mlmd::simd::target_name(t)
                   << "' not supported on this host/build";
    mlmd::simd::set_target(t);
  }
  void TearDown() override { mlmd::simd::set_target(prev_); }

private:
  mlmd::simd::Target prev_ = mlmd::simd::Target::kScalar;
};

TEST_P(GemmSweep, ComplexDoubleMatchesReference) {
  const auto& p = std::get<0>(GetParam());
  mlmd::Rng rng(17);
  Matrix<cd> a(p.ta == Trans::kN ? p.m : p.k, p.ta == Trans::kN ? p.k : p.m);
  Matrix<cd> b(p.tb == Trans::kN ? p.k : p.n, p.tb == Trans::kN ? p.n : p.k);
  Matrix<cd> c(p.m, p.n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  const cd alpha(1.3, -0.4), beta(0.5, 0.2);
  auto expect = ref_gemm(p.ta, p.tb, alpha, a, b, beta, c);
  gemm(p.ta, p.tb, alpha, a, b, beta, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-10 * static_cast<double>(p.k + 1));
}

TEST_P(GemmSweep, RealDoubleMatchesReference) {
  const auto& p = std::get<0>(GetParam());
  if (p.ta == Trans::kC || p.tb == Trans::kC) GTEST_SKIP() << "conj == T for real";
  mlmd::Rng rng(18);
  Matrix<double> a(p.ta == Trans::kN ? p.m : p.k, p.ta == Trans::kN ? p.k : p.m);
  Matrix<double> b(p.tb == Trans::kN ? p.k : p.n, p.tb == Trans::kN ? p.n : p.k);
  Matrix<double> c(p.m, p.n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  auto expect = ref_gemm(p.ta, p.tb, 2.0, a, b, -1.0, c);
  gemm(p.ta, p.tb, 2.0, a, b, -1.0, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-10 * static_cast<double>(p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(
        ::testing::Values(GemmCase{1, 1, 1, Trans::kN, Trans::kN},
                          GemmCase{4, 4, 4, Trans::kN, Trans::kN},
                          GemmCase{5, 3, 7, Trans::kN, Trans::kN},
                          GemmCase{5, 3, 7, Trans::kT, Trans::kN},
                          GemmCase{5, 3, 7, Trans::kN, Trans::kT},
                          GemmCase{5, 3, 7, Trans::kC, Trans::kN},
                          GemmCase{5, 3, 7, Trans::kN, Trans::kC},
                          GemmCase{5, 3, 7, Trans::kC, Trans::kC},
                          GemmCase{64, 64, 64, Trans::kN, Trans::kN},
                          GemmCase{64, 64, 64, Trans::kC, Trans::kN},
                          GemmCase{130, 70, 129, Trans::kN, Trans::kN},
                          GemmCase{33, 65, 200, Trans::kC, Trans::kT}),
        ::testing::ValuesIn(mlmd::testing::kAllSimdTargets)),
    [](const auto& info) {
      return "case" + std::to_string(info.index) + "_" +
             mlmd::simd::target_name(std::get<1>(info.param));
    });

// ---- exhaustive engine validation ----------------------------------------
//
// The packed engine has edge paths at every blocking boundary (MR/NR
// tile remainders, kMC row-panel remainders, kKC reduction splits, empty
// dimensions). Sweep the full shape cross-product over sizes that hit
// each of them, for every trans pair.

constexpr std::size_t kEdgeSizes[] = {0, 1, 5, 64, 65, 129};
constexpr Trans kAllTrans[] = {Trans::kN, Trans::kT, Trans::kC};

template <class T>
void exhaustive_shape_sweep(T alpha, T beta, double tol_scale) {
  mlmd::Rng rng(41);
  for (std::size_t m : kEdgeSizes)
    for (std::size_t n : kEdgeSizes)
      for (std::size_t k : kEdgeSizes)
        for (Trans ta : kAllTrans)
          for (Trans tb : kAllTrans) {
            if constexpr (std::is_arithmetic_v<T>)
              if (ta == Trans::kC || tb == Trans::kC) continue;
            Matrix<T> a(ta == Trans::kN ? m : k, ta == Trans::kN ? k : m);
            Matrix<T> b(tb == Trans::kN ? k : n, tb == Trans::kN ? n : k);
            Matrix<T> c(m, n);
            fill_random(a, rng);
            fill_random(b, rng);
            fill_random(c, rng);
            auto expect = ref_gemm(ta, tb, alpha, a, b, beta, c);
            gemm(ta, tb, alpha, a, b, beta, c);
            ASSERT_LT(max_abs_diff(c, expect),
                      tol_scale * static_cast<double>(k + 1))
                << "m=" << m << " n=" << n << " k=" << k
                << " ta=" << static_cast<int>(ta)
                << " tb=" << static_cast<int>(tb);
          }
}

class GemmExhaustive : public mlmd::testing::SimdTargetTest {};

TEST_P(GemmExhaustive, ShapeSweepDouble) {
  exhaustive_shape_sweep<double>(1.7, -0.6, 1e-10);
}

TEST_P(GemmExhaustive, ShapeSweepComplexDouble) {
  exhaustive_shape_sweep<cd>(cd(1.3, -0.4), cd(0.5, 0.2), 1e-10);
}

TEST_P(GemmExhaustive, ShapeSweepFloat) {
  exhaustive_shape_sweep<float>(1.7f, -0.6f, 2e-4);
}

TEST_P(GemmExhaustive, ShapeSweepComplexFloat) {
  exhaustive_shape_sweep<cf>(cf(1.3f, -0.4f), cf(0.5f, 0.2f), 4e-4);
}

INSTANTIATE_TEST_SUITE_P(Targets, GemmExhaustive,
                         ::testing::ValuesIn(mlmd::testing::kAllSimdTargets),
                         mlmd::testing::SimdTargetName{});

// alpha/beta cross-product (incl. the alpha == 0 and beta == 0 special
// paths, which must still apply beta / overwrite C) on a shape subset
// across all four precisions.
template <class T>
struct real_of {
  using type = T;
};
template <class R>
struct real_of<std::complex<R>> {
  using type = R;
};

template <class T>
void alpha_beta_sweep(double tol_scale) {
  using R = typename real_of<T>::type;
  mlmd::Rng rng(43);
  const R coefs[] = {R{0}, R{1}, R{-0.5}};
  const std::size_t shapes[][3] = {{5, 3, 7}, {65, 33, 129}};
  const Trans pairs[][2] = {{Trans::kN, Trans::kN}, {Trans::kT, Trans::kT}};
  for (const auto& s : shapes)
    for (const auto& tp : pairs)
      for (R av : coefs)
        for (R bv : coefs) {
          const std::size_t m = s[0], n = s[1], k = s[2];
          const Trans ta = tp[0], tb = tp[1];
          const T alpha(av), beta(bv);
          Matrix<T> a(ta == Trans::kN ? m : k, ta == Trans::kN ? k : m);
          Matrix<T> b(tb == Trans::kN ? k : n, tb == Trans::kN ? n : k);
          Matrix<T> c(m, n);
          fill_random(a, rng);
          fill_random(b, rng);
          fill_random(c, rng);
          auto expect = ref_gemm(ta, tb, alpha, a, b, beta, c);
          gemm(ta, tb, alpha, a, b, beta, c);
          ASSERT_LT(max_abs_diff(c, expect),
                    tol_scale * static_cast<double>(k + 1))
              << "alpha=" << static_cast<double>(av)
              << " beta=" << static_cast<double>(bv) << " k=" << k;
        }
}

class GemmAlphaBeta : public mlmd::testing::SimdTargetTest {};

TEST_P(GemmAlphaBeta, Double) { alpha_beta_sweep<double>(1e-10); }
TEST_P(GemmAlphaBeta, ComplexDouble) { alpha_beta_sweep<cd>(1e-10); }
TEST_P(GemmAlphaBeta, Float) { alpha_beta_sweep<float>(2e-4); }
TEST_P(GemmAlphaBeta, ComplexFloat) { alpha_beta_sweep<cf>(4e-4); }

INSTANTIATE_TEST_SUITE_P(Targets, GemmAlphaBeta,
                         ::testing::ValuesIn(mlmd::testing::kAllSimdTargets),
                         mlmd::testing::SimdTargetName{});

// Determinism contract (gemm.hpp): results are bit-identical for any
// thread count, because tile decomposition and accumulation order depend
// only on shapes — independently of which micro-kernel ISA is active.
class GemmDeterminism : public mlmd::testing::SimdTargetTest {};

TEST_P(GemmDeterminism, BitIdenticalAcrossThreadCounts) {
  const int nthr0 = mlmd::par::num_threads();
  mlmd::Rng rng(47);
  Matrix<double> a(65, 129), b(129, 65), c0(65, 65);
  Matrix<cd> za(129, 65), zb(65, 129), zc0(65, 65); // stored op-shapes for kC/kT
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c0, rng);
  fill_random(za, rng);
  fill_random(zb, rng);
  fill_random(zc0, rng);

  Matrix<double> c_ref;
  Matrix<cd> zc_ref;
  bool first = true;
  for (int threads : {1, 2, 7}) {
    mlmd::par::ThreadPool::set_global_threads(threads);
    Matrix<double> c = c0;
    Matrix<cd> zc = zc0;
    gemm(Trans::kN, Trans::kN, 1.5, a, b, -0.5, c);
    gemm(Trans::kC, Trans::kT, cd(1.5, 0.25), za, zb, cd(-0.5, 1.0), zc);
    if (first) {
      c_ref = c;
      zc_ref = zc;
      first = false;
    } else {
      EXPECT_EQ(c, c_ref) << "threads=" << threads;
      EXPECT_EQ(zc, zc_ref) << "threads=" << threads;
    }
  }
  mlmd::par::ThreadPool::set_global_threads(nthr0);
}

INSTANTIATE_TEST_SUITE_P(Targets, GemmDeterminism,
                         ::testing::ValuesIn(mlmd::testing::kAllSimdTargets),
                         mlmd::testing::SimdTargetName{});

// ---- 64-byte alignment contract (aligned.hpp) ---------------------------
//
// The dispatched micro-kernels use *aligned* vector loads on packed B
// panels and accumulator tiles; these tests pin the allocation-side
// guarantees instead of trusting them.

TEST(Alignment, WorkspaceScratchIs64ByteAligned) {
  auto& ws = mlmd::common::Workspace::local();
  mlmd::common::Workspace::Frame frame(ws);
  // Odd element counts are the interesting case: every subsequent get<>()
  // must still land on a 64 B boundary because raw() rounds sizes up.
  for (std::size_t n : {1u, 3u, 7u, 63u, 65u, 1000u}) {
    EXPECT_TRUE(mlmd::is_aligned(ws.get<char>(n))) << "n=" << n;
    EXPECT_TRUE(mlmd::is_aligned(ws.get<double>(n))) << "n=" << n;
    EXPECT_TRUE(mlmd::is_aligned(ws.get<cf>(n))) << "n=" << n;
  }
}

TEST(Alignment, MatrixStorageIs64ByteAligned) {
  Matrix<double> d(7, 13);
  Matrix<cf> z(5, 3);
  EXPECT_TRUE(mlmd::is_aligned(d.data()));
  EXPECT_TRUE(mlmd::is_aligned(z.data()));
}

TEST(Alignment, PackedPanelStridesAre64ByteMultiples) {
  // For every supported target: the per-k-step packed-B row is
  // NR * (reals per coefficient) * sizeof(real) bytes, and must be a
  // multiple of 64 so each k step's aligned B loads are legal; the
  // register tile must fit the dispatch-independent accumulator bound.
  for (auto t : mlmd::simd::supported_targets()) {
    mlmd::testing::ScopedSimdTarget guard(t);
    const auto& kt = mlmd::simd::kernels();
    EXPECT_EQ(kt.target, t);
    EXPECT_EQ(kt.sgemm.nr * sizeof(float) % mlmd::kSimdAlign, 0u);
    EXPECT_EQ(kt.dgemm.nr * sizeof(double) % mlmd::kSimdAlign, 0u);
    EXPECT_EQ(kt.cgemm.nr * 2 * sizeof(float) % mlmd::kSimdAlign, 0u);
    EXPECT_EQ(kt.zgemm.nr * 2 * sizeof(double) % mlmd::kSimdAlign, 0u);
    EXPECT_LE(kt.sgemm.mr * kt.sgemm.nr, mlmd::simd::kMaxAccElems);
    EXPECT_LE(kt.dgemm.mr * kt.dgemm.nr, mlmd::simd::kMaxAccElems);
    EXPECT_LE(kt.cgemm.mr * kt.cgemm.nr, mlmd::simd::kMaxAccElems);
    EXPECT_LE(kt.zgemm.mr * kt.zgemm.nr, mlmd::simd::kMaxAccElems);
  }
}

// Steady state is allocation-free: after a warm-up call, repeated gemms
// with the same shapes never touch the heap (Workspace arena contract).
TEST(GemmWorkspace, SteadyStateAllocFree) {
  mlmd::Rng rng(53);
  Matrix<double> a(129, 129), b(129, 129), c(129, 129);
  Matrix<cf> za(129, 129), zb(129, 129), zc(129, 129);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(za, rng);
  fill_random(zb, rng);
  auto run = [&] {
    gemm(Trans::kN, Trans::kT, 1.0, a, b, 0.0, c);
    gemm_mixed(ComputeMode::kBF16x2, Trans::kC, Trans::kN, cf(1.0f, 0.0f), za,
               zb, cf{}, zc);
  };
  run(); // warm-up: arena growth allowed here only
  const auto allocs = mlmd::common::Workspace::total_heap_allocs();
  for (int i = 0; i < 3; ++i) run();
  EXPECT_EQ(mlmd::common::Workspace::total_heap_allocs(), allocs);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(gemm(Trans::kN, Trans::kN, 1.0, a, b, 0.0, c),
               std::invalid_argument);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix<double> a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  b(0, 0) = 3;
  b(1, 1) = 4;
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::kN, Trans::kN, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Gemv, MatchesGemm) {
  mlmd::Rng rng(19);
  Matrix<double> a(6, 4);
  fill_random(a, rng);
  std::vector<double> x(4), y(6, 0.0);
  for (auto& v : x) v = rng.normal();
  gemv(Trans::kN, 1.0, a, x.data(), 0.0, y.data());
  for (std::size_t i = 0; i < 6; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < 4; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-12);
  }
}

TEST(Gemv, ComplexTransConjMatchesReference) {
  // The packed kT/kC path streams A row by row into per-output
  // accumulators; check it against the direct column-dot definition for
  // both the transpose and the conjugate-transpose.
  mlmd::Rng rng(20);
  Matrix<cd> a(37, 23); // stored k x m for kT/kC
  fill_random(a, rng);
  std::vector<cd> x(37), y0(23);
  for (auto& v : x) v = cd(rng.normal(), rng.normal());
  for (auto& v : y0) v = cd(rng.normal(), rng.normal());
  const cd alpha(1.25, -0.5), beta(0.75, 0.25);
  for (Trans t : {Trans::kT, Trans::kC}) {
    std::vector<cd> y = y0;
    gemv(t, alpha, a, x.data(), beta, y.data());
    for (std::size_t j = 0; j < 23; ++j) {
      cd acc{};
      for (std::size_t p = 0; p < 37; ++p) {
        const cd v = t == Trans::kC ? std::conj(a(p, j)) : a(p, j);
        acc += v * x[p];
      }
      const cd expect = alpha * acc + beta * y0[j];
      ASSERT_NEAR(std::abs(y[j] - expect), 0.0, 1e-12)
          << "t=" << static_cast<int>(t) << " j=" << j;
    }
  }
}

TEST(Gemv, FlopCountDistinguishesComplex) {
  // Analytic contract (gemm.cpp): 2*m*k real FLOPs for real data, 8*m*k
  // for complex — identical for every trans path.
  Matrix<double> a(12, 7);
  std::vector<double> x(12, 1.0), y(7, 0.0);
  Matrix<cd> za(12, 7);
  std::vector<cd> zx(12, cd(1.0, 0.0)), zy(7);
  {
    mlmd::flops::Scope s;
    gemv(Trans::kT, 1.0, a, x.data(), 0.0, y.data());
    EXPECT_EQ(s.flops(), 2ull * 7 * 12);
  }
  {
    mlmd::flops::Scope s;
    gemv(Trans::kC, cd(1.0, 0.0), za, zx.data(), cd{}, zy.data());
    EXPECT_EQ(s.flops(), 8ull * 7 * 12);
  }
  {
    // kN consumes x of length n_cols and fills y of length n_rows.
    std::vector<cd> zx_n(7, cd(1.0, 0.0)), zy_n(12);
    mlmd::flops::Scope s;
    gemv(Trans::kN, cd(1.0, 0.0), za, zx_n.data(), cd{}, zy_n.data());
    EXPECT_EQ(s.flops(), 8ull * 12 * 7);
  }
}

// ---- BF16 mixed-precision ladder ----------------------------------------

class Bf16Ladder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Bf16Ladder, AccuracyImprovesWithComponents) {
  const std::size_t n = GetParam();
  mlmd::Rng rng(23);
  Matrix<cf> a(n, n), b(n, n);
  fill_random(a, rng);
  fill_random(b, rng);

  Matrix<cf> c_ref(n, n), c1(n, n), c2(n, n), c3(n, n);
  const cf one(1.0f, 0.0f), zero{};
  gemm(Trans::kC, Trans::kN, one, a, b, zero, c_ref);
  gemm_mixed(ComputeMode::kBF16, Trans::kC, Trans::kN, one, a, b, zero, c1);
  gemm_mixed(ComputeMode::kBF16x2, Trans::kC, Trans::kN, one, a, b, zero, c2);
  gemm_mixed(ComputeMode::kBF16x3, Trans::kC, Trans::kN, one, a, b, zero, c3);

  const double e1 = max_abs_diff(c1, c_ref);
  const double e2 = max_abs_diff(c2, c_ref);
  const double e3 = max_abs_diff(c3, c_ref);
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e2, e1);
  EXPECT_LE(e3, e2);
  // BF16x3 is "comparable to standard single precision" (paper Sec. VI.C).
  EXPECT_LT(e3, 1e-4 * std::sqrt(static_cast<double>(n)));
  // Plain BF16 relative error stays bounded by its 2^-8 mantissa.
  EXPECT_LT(e1 / (fro_norm(c_ref) / n + 1e-30), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bf16Ladder, ::testing::Values(4, 16, 48, 96));

TEST(Bf16Gemm, NativeModeIdentical) {
  mlmd::Rng rng(29);
  Matrix<cf> a(8, 8), b(8, 8), c1(8, 8), c2(8, 8);
  fill_random(a, rng);
  fill_random(b, rng);
  const cf one(1.0f, 0.0f), zero{};
  gemm(Trans::kN, Trans::kN, one, a, b, zero, c1);
  gemm_mixed(ComputeMode::kNative, Trans::kN, Trans::kN, one, a, b, zero, c2);
  EXPECT_EQ(c1, c2);
}

// ---- eigensolver ---------------------------------------------------------

class EigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigSweep, RandomHermitianResidual) {
  const std::size_t n = GetParam();
  mlmd::Rng rng(31 + n);
  Matrix<cd> h(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < n; ++j) {
      h(i, j) = cd(rng.normal(), rng.normal());
      h(j, i) = std::conj(h(i, j));
    }
  }
  auto r = eigh(h);
  // Residual ||H v - lambda v|| per eigenpair.
  for (std::size_t q = 0; q < n; ++q) {
    double res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cd acc{};
      for (std::size_t j = 0; j < n; ++j) acc += h(i, j) * r.vectors(j, q);
      acc -= r.values[q] * r.vectors(i, q);
      res += std::norm(acc);
    }
    EXPECT_LT(std::sqrt(res), 1e-8) << "eigenpair " << q;
  }
  // Eigenvalues ascending.
  for (std::size_t q = 1; q < n; ++q) EXPECT_LE(r.values[q - 1], r.values[q] + 1e-12);
  // Eigenvectors orthonormal.
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      cd acc{};
      for (std::size_t i = 0; i < n; ++i)
        acc += std::conj(r.vectors(i, p)) * r.vectors(i, q);
      EXPECT_NEAR(std::abs(acc), p == q ? 1.0 : 0.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(Eig, KnownPauliX) {
  Matrix<cd> h(2, 2);
  h(0, 1) = 1.0;
  h(1, 0) = 1.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
}

TEST(Eig, DiagonalMatrix) {
  Matrix<cd> h(3, 3);
  h(0, 0) = 3.0;
  h(1, 1) = 1.0;
  h(2, 2) = 2.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Eig, NonSquareThrows) {
  Matrix<cd> h(2, 3);
  EXPECT_THROW(eigh(h), std::invalid_argument);
}

TEST(Eig, RealSymmetricWrapper) {
  Matrix<double> h(2, 2);
  h(0, 0) = 2.0;
  h(0, 1) = 1.0;
  h(1, 0) = 1.0;
  h(1, 1) = 2.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], 1.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
}

// ---- orthonormalization --------------------------------------------------

TEST(Ortho, MgsProducesOrthonormalSet) {
  mlmd::Rng rng(37);
  const double dv = 0.125;
  Matrix<cd> psi(200, 6);
  fill_random(psi, rng);
  mgs_orthonormalize(psi, dv);
  EXPECT_LT(orthonormality_error(psi, dv), 1e-10);
}

TEST(Ortho, LowdinProducesOrthonormalSet) {
  mlmd::Rng rng(38);
  const double dv = 0.2;
  Matrix<cd> psi(150, 5);
  fill_random(psi, rng);
  lowdin_orthonormalize(psi, dv);
  EXPECT_LT(orthonormality_error(psi, dv), 1e-8);
}

TEST(Ortho, LowdinPreservesOrthonormalInput) {
  mlmd::Rng rng(39);
  const double dv = 0.1;
  Matrix<cd> psi(100, 4);
  fill_random(psi, rng);
  mgs_orthonormalize(psi, dv);
  Matrix<cd> before = psi;
  lowdin_orthonormalize(psi, dv);
  // Lowdin is the identity on already-orthonormal sets.
  EXPECT_LT(max_abs_diff(psi, before), 1e-7);
}

} // namespace
