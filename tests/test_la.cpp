// Tests for the dense linear algebra substrate: parameterized-precision
// GEMM against a reference implementation, the BF16 accuracy ladder, the
// Hermitian Jacobi eigensolver, and orthonormalization.

#include <gtest/gtest.h>

#include <complex>
#include <tuple>

#include "mlmd/common/rng.hpp"
#include "mlmd/la/eig.hpp"
#include "mlmd/la/gemm.hpp"
#include "mlmd/la/matrix.hpp"
#include "mlmd/la/ortho.hpp"

namespace {

using namespace mlmd::la;
using cd = std::complex<double>;
using cf = std::complex<float>;

template <class T>
void fill_random(Matrix<T>& m, mlmd::Rng& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if constexpr (std::is_arithmetic_v<T>)
      m.data()[i] = static_cast<T>(rng.normal());
    else
      m.data()[i] = T(static_cast<typename T::value_type>(rng.normal()),
                      static_cast<typename T::value_type>(rng.normal()));
  }
}

/// Reference triple-loop GEMM.
template <class T>
Matrix<T> ref_gemm(Trans ta, Trans tb, T alpha, const Matrix<T>& a,
                   const Matrix<T>& b, T beta, const Matrix<T>& c0) {
  auto opa = [&](std::size_t i, std::size_t j) -> T {
    if (ta == Trans::kN) return a(i, j);
    T v = a(j, i);
    if constexpr (!std::is_arithmetic_v<T>)
      if (ta == Trans::kC) v = std::conj(v);
    return v;
  };
  auto opb = [&](std::size_t i, std::size_t j) -> T {
    if (tb == Trans::kN) return b(i, j);
    T v = b(j, i);
    if constexpr (!std::is_arithmetic_v<T>)
      if (tb == Trans::kC) v = std::conj(v);
    return v;
  };
  const std::size_t m = ta == Trans::kN ? a.rows() : a.cols();
  const std::size_t k = ta == Trans::kN ? a.cols() : a.rows();
  const std::size_t n = tb == Trans::kN ? b.cols() : b.rows();
  Matrix<T> c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      T acc{};
      for (std::size_t p = 0; p < k; ++p) acc += opa(i, p) * opb(p, j);
      c(i, j) = alpha * acc + beta * c0(i, j);
    }
  return c;
}

// ---- parameterized GEMM sweep over shapes and trans combinations --------

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, ComplexDoubleMatchesReference) {
  const auto& p = GetParam();
  mlmd::Rng rng(17);
  Matrix<cd> a(p.ta == Trans::kN ? p.m : p.k, p.ta == Trans::kN ? p.k : p.m);
  Matrix<cd> b(p.tb == Trans::kN ? p.k : p.n, p.tb == Trans::kN ? p.n : p.k);
  Matrix<cd> c(p.m, p.n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  const cd alpha(1.3, -0.4), beta(0.5, 0.2);
  auto expect = ref_gemm(p.ta, p.tb, alpha, a, b, beta, c);
  gemm(p.ta, p.tb, alpha, a, b, beta, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-10 * static_cast<double>(p.k + 1));
}

TEST_P(GemmSweep, RealDoubleMatchesReference) {
  const auto& p = GetParam();
  if (p.ta == Trans::kC || p.tb == Trans::kC) GTEST_SKIP() << "conj == T for real";
  mlmd::Rng rng(18);
  Matrix<double> a(p.ta == Trans::kN ? p.m : p.k, p.ta == Trans::kN ? p.k : p.m);
  Matrix<double> b(p.tb == Trans::kN ? p.k : p.n, p.tb == Trans::kN ? p.n : p.k);
  Matrix<double> c(p.m, p.n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  auto expect = ref_gemm(p.ta, p.tb, 2.0, a, b, -1.0, c);
  gemm(p.ta, p.tb, 2.0, a, b, -1.0, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-10 * static_cast<double>(p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, Trans::kN, Trans::kN},
                      GemmCase{4, 4, 4, Trans::kN, Trans::kN},
                      GemmCase{5, 3, 7, Trans::kN, Trans::kN},
                      GemmCase{5, 3, 7, Trans::kT, Trans::kN},
                      GemmCase{5, 3, 7, Trans::kN, Trans::kT},
                      GemmCase{5, 3, 7, Trans::kC, Trans::kN},
                      GemmCase{5, 3, 7, Trans::kN, Trans::kC},
                      GemmCase{5, 3, 7, Trans::kC, Trans::kC},
                      GemmCase{64, 64, 64, Trans::kN, Trans::kN},
                      GemmCase{64, 64, 64, Trans::kC, Trans::kN},
                      GemmCase{130, 70, 129, Trans::kN, Trans::kN},
                      GemmCase{33, 65, 200, Trans::kC, Trans::kT}));

TEST(Gemm, ShapeMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(gemm(Trans::kN, Trans::kN, 1.0, a, b, 0.0, c),
               std::invalid_argument);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix<double> a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  b(0, 0) = 3;
  b(1, 1) = 4;
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::kN, Trans::kN, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Gemv, MatchesGemm) {
  mlmd::Rng rng(19);
  Matrix<double> a(6, 4);
  fill_random(a, rng);
  std::vector<double> x(4), y(6, 0.0);
  for (auto& v : x) v = rng.normal();
  gemv(Trans::kN, 1.0, a, x.data(), 0.0, y.data());
  for (std::size_t i = 0; i < 6; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < 4; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-12);
  }
}

// ---- BF16 mixed-precision ladder ----------------------------------------

class Bf16Ladder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Bf16Ladder, AccuracyImprovesWithComponents) {
  const std::size_t n = GetParam();
  mlmd::Rng rng(23);
  Matrix<cf> a(n, n), b(n, n);
  fill_random(a, rng);
  fill_random(b, rng);

  Matrix<cf> c_ref(n, n), c1(n, n), c2(n, n), c3(n, n);
  const cf one(1.0f, 0.0f), zero{};
  gemm(Trans::kC, Trans::kN, one, a, b, zero, c_ref);
  gemm_mixed(ComputeMode::kBF16, Trans::kC, Trans::kN, one, a, b, zero, c1);
  gemm_mixed(ComputeMode::kBF16x2, Trans::kC, Trans::kN, one, a, b, zero, c2);
  gemm_mixed(ComputeMode::kBF16x3, Trans::kC, Trans::kN, one, a, b, zero, c3);

  const double e1 = max_abs_diff(c1, c_ref);
  const double e2 = max_abs_diff(c2, c_ref);
  const double e3 = max_abs_diff(c3, c_ref);
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e2, e1);
  EXPECT_LE(e3, e2);
  // BF16x3 is "comparable to standard single precision" (paper Sec. VI.C).
  EXPECT_LT(e3, 1e-4 * std::sqrt(static_cast<double>(n)));
  // Plain BF16 relative error stays bounded by its 2^-8 mantissa.
  EXPECT_LT(e1 / (fro_norm(c_ref) / n + 1e-30), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bf16Ladder, ::testing::Values(4, 16, 48, 96));

TEST(Bf16Gemm, NativeModeIdentical) {
  mlmd::Rng rng(29);
  Matrix<cf> a(8, 8), b(8, 8), c1(8, 8), c2(8, 8);
  fill_random(a, rng);
  fill_random(b, rng);
  const cf one(1.0f, 0.0f), zero{};
  gemm(Trans::kN, Trans::kN, one, a, b, zero, c1);
  gemm_mixed(ComputeMode::kNative, Trans::kN, Trans::kN, one, a, b, zero, c2);
  EXPECT_EQ(c1, c2);
}

// ---- eigensolver ---------------------------------------------------------

class EigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigSweep, RandomHermitianResidual) {
  const std::size_t n = GetParam();
  mlmd::Rng rng(31 + n);
  Matrix<cd> h(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < n; ++j) {
      h(i, j) = cd(rng.normal(), rng.normal());
      h(j, i) = std::conj(h(i, j));
    }
  }
  auto r = eigh(h);
  // Residual ||H v - lambda v|| per eigenpair.
  for (std::size_t q = 0; q < n; ++q) {
    double res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cd acc{};
      for (std::size_t j = 0; j < n; ++j) acc += h(i, j) * r.vectors(j, q);
      acc -= r.values[q] * r.vectors(i, q);
      res += std::norm(acc);
    }
    EXPECT_LT(std::sqrt(res), 1e-8) << "eigenpair " << q;
  }
  // Eigenvalues ascending.
  for (std::size_t q = 1; q < n; ++q) EXPECT_LE(r.values[q - 1], r.values[q] + 1e-12);
  // Eigenvectors orthonormal.
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      cd acc{};
      for (std::size_t i = 0; i < n; ++i)
        acc += std::conj(r.vectors(i, p)) * r.vectors(i, q);
      EXPECT_NEAR(std::abs(acc), p == q ? 1.0 : 0.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(Eig, KnownPauliX) {
  Matrix<cd> h(2, 2);
  h(0, 1) = 1.0;
  h(1, 0) = 1.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
}

TEST(Eig, DiagonalMatrix) {
  Matrix<cd> h(3, 3);
  h(0, 0) = 3.0;
  h(1, 1) = 1.0;
  h(2, 2) = 2.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Eig, NonSquareThrows) {
  Matrix<cd> h(2, 3);
  EXPECT_THROW(eigh(h), std::invalid_argument);
}

TEST(Eig, RealSymmetricWrapper) {
  Matrix<double> h(2, 2);
  h(0, 0) = 2.0;
  h(0, 1) = 1.0;
  h(1, 0) = 1.0;
  h(1, 1) = 2.0;
  auto r = eigh(h);
  EXPECT_NEAR(r.values[0], 1.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
}

// ---- orthonormalization --------------------------------------------------

TEST(Ortho, MgsProducesOrthonormalSet) {
  mlmd::Rng rng(37);
  const double dv = 0.125;
  Matrix<cd> psi(200, 6);
  fill_random(psi, rng);
  mgs_orthonormalize(psi, dv);
  EXPECT_LT(orthonormality_error(psi, dv), 1e-10);
}

TEST(Ortho, LowdinProducesOrthonormalSet) {
  mlmd::Rng rng(38);
  const double dv = 0.2;
  Matrix<cd> psi(150, 5);
  fill_random(psi, rng);
  lowdin_orthonormalize(psi, dv);
  EXPECT_LT(orthonormality_error(psi, dv), 1e-8);
}

TEST(Ortho, LowdinPreservesOrthonormalInput) {
  mlmd::Rng rng(39);
  const double dv = 0.1;
  Matrix<cd> psi(100, 4);
  fill_random(psi, rng);
  mgs_orthonormalize(psi, dv);
  Matrix<cd> before = psi;
  lowdin_orthonormalize(psi, dv);
  // Lowdin is the identity on already-orthonormal sets.
  EXPECT_LT(max_abs_diff(psi, before), 1e-7);
}

} // namespace
