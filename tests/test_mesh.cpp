// Tests for DC-MESH: the shadow-dynamics contract, photoexcitation vs
// dark dynamics, the Table I baseline runners, and the SimComm
// multi-domain driver with Maxwell coupling.

#include <gtest/gtest.h>

#include <cmath>

#include "mlmd/mesh/baseline.hpp"
#include "mlmd/mesh/dcmesh.hpp"
#include "mlmd/mesh/multidomain.hpp"
#include "mlmd/par/transport.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::mesh;

MeshOptions fast_options() {
  MeshOptions opt;
  opt.lfd.dt_qd = 0.06;
  opt.nqd_per_md = 10;
  opt.lfd.hartree_every = 5;
  opt.lfd.nlp_every = 5;
  return opt;
}

DcMeshDomain make_domain(MeshOptions opt = fast_options()) {
  grid::Grid3 g{8, 8, 8, 0.7, 0.7, 0.7};
  std::vector<lfd::Ion> ions = {
      {0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.0, 1.6, 2.0}};
  return DcMeshDomain(g, 4, 2, ions, opt);
}

TEST(DcMesh, DarkStepKeepsOccupationsSane) {
  auto dom = make_domain();
  auto stats = dom.md_step(nullptr);
  for (double f : dom.lfd().occupations()) {
    EXPECT_GE(f, -1e-9);
    EXPECT_LE(f, 2.0 + 1e-9);
  }
  EXPECT_GE(stats.n_exc, 0.0);
  EXPECT_GT(dom.time(), 0.0);
}

TEST(DcMesh, ShadowTrafficTinyVsWavefunctions) {
  auto dom = make_domain();
  auto stats = dom.md_step(nullptr);
  // The paper's claim (Sec. V.A.3): occupation traffic is negligible
  // compared to the resident wavefunction arrays.
  EXPECT_GT(stats.wavefunction_bytes, 100 * stats.bytes_lfd_to_qxmd);
  // delta_v_loc is one scalar field: N_grid doubles.
  EXPECT_EQ(stats.bytes_qxmd_to_lfd, 8u * 8 * 8 * 8);
  // delta_f is N_orb doubles.
  EXPECT_EQ(stats.bytes_lfd_to_qxmd, 4u * 8);
}

TEST(DcMesh, PulseExcitesMoreThanDark) {
  auto lit = make_domain();
  auto dark = make_domain();
  maxwell::Pulse pulse;
  pulse.e0 = 0.15;
  pulse.omega = 0.15;
  pulse.fwhm = 30.0;
  pulse.t0 = 1.5 * lit.md_dt();
  double n_lit = 0, n_dark = 0;
  for (int s = 0; s < 3; ++s) {
    n_lit = lit.md_step(&pulse).n_exc;
    n_dark = dark.md_step(nullptr).n_exc;
  }
  EXPECT_GE(n_lit, n_dark);
}

TEST(DcMesh, FixedVectorPotentialPath) {
  auto dom = make_domain();
  auto stats = dom.md_step_with_a(0.3);
  EXPECT_GE(stats.n_exc, 0.0);
  auto j = dom.current(0.3);
  EXPECT_TRUE(std::isfinite(j[0]) && std::isfinite(j[1]) && std::isfinite(j[2]));
}

TEST(DcMesh, IonsStayBounded) {
  auto dom = make_domain();
  for (int s = 0; s < 5; ++s) {
    auto stats = dom.md_step(nullptr);
    EXPECT_LT(stats.ion_max_disp, 1.0); // spring keeps the toy lattice bound
  }
}

TEST(Baseline, GlobalAndDcProduceTimings) {
  auto base = run_global_baseline(8, 4, 2);
  EXPECT_GT(base.seconds_per_qd_step, 0.0);
  EXPECT_EQ(base.electrons, 8u);
  auto dc = run_dc_domain(8, 4, 2);
  EXPECT_GT(dc.seconds_per_qd_step, 0.0);
}

TEST(Baseline, GlobalPerElectronCostGrowsWithSize) {
  // The structural Table I claim: baseline T2S/electron grows with the
  // orbital count (O(N^2) orthogonalization); allow generous margin but
  // require clear growth over a 8x size ratio.
  auto small = run_global_baseline(8, 4, 3);
  auto large = run_global_baseline(12, 32, 3);
  EXPECT_GT(large.t2s_per_electron, 1.5 * small.t2s_per_electron);
}

TEST(Multidomain, RunsAndGathersNexc) {
  ParallelMeshOptions opt;
  opt.md_steps = 1;
  opt.grid_n = 8;
  opt.norb = 4;
  opt.nfilled = 2;
  opt.mesh = fast_options();
  auto res = run_parallel_mesh(3, opt);
  ASSERT_EQ(res.n_exc_per_domain.size(), 3u);
  for (double v : res.n_exc_per_domain) EXPECT_GE(v, 0.0);
  // Communication pattern: per MD step one current allgather (per rank)
  // plus one final gather per rank.
  EXPECT_GE(res.traffic.collective_ops, 3u * 2u);
  EXPECT_GT(res.traffic.collective_bytes, 0u);
}

TEST(Multidomain, SingleRankWorks) {
  ParallelMeshOptions opt;
  opt.md_steps = 1;
  opt.mesh = fast_options();
  auto res = run_parallel_mesh(1, opt);
  ASSERT_EQ(res.n_exc_per_domain.size(), 1u);
}

TEST(Multidomain, AsyncCommBitIdenticalToSync) {
  // --comm=async posts the current allgather before the A-independent
  // half of the MD step and splits the step around the wait; the op
  // order, payloads, and arithmetic are unchanged, so every gathered
  // observable — and the metered traffic — must be bit-identical to the
  // synchronous loop, not merely close.
  ParallelMeshOptions opt;
  opt.md_steps = 2;
  opt.grid_n = 8;
  opt.norb = 4;
  opt.nfilled = 2;
  opt.mesh = fast_options();
  const par::CommMode saved = par::default_comm_mode();
  par::set_default_comm_mode(par::CommMode::kSync);
  auto s = run_parallel_mesh(3, opt);
  par::set_default_comm_mode(par::CommMode::kAsync);
  auto a = run_parallel_mesh(3, opt);
  par::set_default_comm_mode(saved);
  ASSERT_EQ(s.n_exc_per_domain.size(), a.n_exc_per_domain.size());
  for (std::size_t i = 0; i < s.n_exc_per_domain.size(); ++i)
    EXPECT_EQ(s.n_exc_per_domain[i], a.n_exc_per_domain[i]) << "domain " << i;
  EXPECT_EQ(s.traffic.collective_bytes, a.traffic.collective_bytes);
  ASSERT_EQ(s.rank_traffic.size(), a.rank_traffic.size());
  for (std::size_t r = 0; r < s.rank_traffic.size(); ++r) {
    unsigned long long sb = 0, ab = 0;
    for (const auto& [op, st] : s.rank_traffic[r].ops) sb += st.bytes;
    for (const auto& [op, st] : a.rank_traffic[r].ops) ab += st.bytes;
    EXPECT_EQ(sb, ab) << "rank " << r;
  }
  // The async loop really went through the nonblocking path.
  for (const auto& rt : a.rank_traffic) {
    EXPECT_GT(rt.handles_posted, 0u);
    EXPECT_EQ(rt.handles_posted, rt.handles_completed);
  }
  for (const auto& rt : s.rank_traffic) EXPECT_EQ(rt.handles_posted, 0u);
}

TEST(Multidomain, DeterministicAcrossRuns) {
  ParallelMeshOptions opt;
  opt.md_steps = 1;
  opt.mesh = fast_options();
  auto a = run_parallel_mesh(2, opt);
  auto b = run_parallel_mesh(2, opt);
  ASSERT_EQ(a.n_exc_per_domain.size(), b.n_exc_per_domain.size());
  for (std::size_t i = 0; i < a.n_exc_per_domain.size(); ++i)
    EXPECT_DOUBLE_EQ(a.n_exc_per_domain[i], b.n_exc_per_domain[i]);
}

} // namespace
