// Tests for the second-principles ferroelectric effective Hamiltonian:
// analytic forces against numerical gradients (property sweep), well
// physics, excitation softening, and dynamics sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "mlmd/common/rng.hpp"
#include "mlmd/ferro/lattice.hpp"

namespace {

using namespace mlmd::ferro;

void randomize(FerroLattice& lat, unsigned long long seed, double amp = 0.5) {
  mlmd::Rng rng(seed);
  for (auto& u : lat.field())
    u = {amp * rng.normal(), amp * rng.normal(), amp * rng.normal()};
}

TEST(Ferro, TooSmallThrows) {
  EXPECT_THROW(FerroLattice(1, 4), std::invalid_argument);
}

class FerroForceSweep : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(FerroForceSweep, ForcesAreMinusEnergyGradient) {
  FerroParams p;
  p.a0 = -0.8;
  p.b = 0.9;
  p.k = 0.3;
  p.j = 0.5;
  p.d = 0.6;
  p.e_ext = {0.05, -0.02, 0.1};
  FerroLattice lat(5, 4, p);
  randomize(lat, GetParam());
  const std::vector<double> w = [&] {
    std::vector<double> wv(lat.ncells());
    mlmd::Rng rng(GetParam() + 1);
    for (auto& v : wv) v = rng.uniform(0.0, 0.8);
    return wv;
  }();
  lat.set_excitation(w);

  std::vector<Vec3> f;
  lat.forces(f);
  const double eps = 1e-6;
  for (std::size_t i : {0ul, 7ul, 13ul, 19ul}) {
    for (int c = 0; c < 3; ++c) {
      auto& u = lat.field()[i][static_cast<std::size_t>(c)];
      const double orig = u;
      u = orig + eps;
      const double ep = lat.energy();
      u = orig - eps;
      const double em = lat.energy();
      u = orig;
      EXPECT_NEAR(f[i][static_cast<std::size_t>(c)], -(ep - em) / (2 * eps), 1e-5)
          << "cell " << i << " comp " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FerroForceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Ferro, WellAmplitudeAnalytic) {
  FerroParams p;
  p.a0 = -1.0;
  p.b = 1.0;
  p.k = 0.4;
  FerroLattice lat(4, 4, p);
  EXPECT_NEAR(lat.well_amplitude(), std::sqrt((0.4 + 1.0) / 2.0), 1e-12);
}

TEST(Ferro, UniformPolarizedStateIsStationary) {
  FerroParams p;
  p.d = 0.0; // the chiral term tilts the uniform state; test without it
  FerroLattice lat(6, 6, p);
  const double m = lat.well_amplitude();
  for (auto& u : lat.field()) u = {0.0, 0.0, m};
  std::vector<Vec3> f;
  lat.forces(f);
  for (const auto& fi : f)
    for (double c : fi) EXPECT_NEAR(c, 0.0, 1e-10);
}

TEST(Ferro, RelaxationDecreasesEnergy) {
  FerroLattice lat(8, 8);
  randomize(lat, 11);
  const double e0 = lat.energy();
  for (int i = 0; i < 200; ++i) lat.step();
  EXPECT_LT(lat.energy(), e0);
}

TEST(Ferro, RelaxedStateReachesWellAmplitude) {
  FerroParams p;
  p.d = 0.0;
  FerroLattice lat(6, 6, p);
  for (auto& u : lat.field()) u = {0.0, 0.0, 0.1}; // weak seed, relax into well
  for (int i = 0; i < 2000; ++i) lat.step();
  EXPECT_NEAR(lat.mean_uz(), lat.well_amplitude(), 0.05 * lat.well_amplitude());
}

TEST(Ferro, ExcitationSoftensPolarization) {
  FerroParams p;
  p.d = 0.0;
  FerroLattice gs(6, 6, p), xs(6, 6, p);
  for (auto& u : gs.field()) u = {0.0, 0.0, 0.6};
  for (auto& u : xs.field()) u = {0.0, 0.0, 0.6};
  xs.set_uniform_excitation(0.5); // A(w=1/2) = 0: well flattens
  for (int i = 0; i < 1500; ++i) {
    gs.step();
    xs.step();
  }
  EXPECT_LT(xs.mean_uz(), 0.6 * gs.mean_uz());
}

TEST(Ferro, ExcitationSizeMismatchThrows) {
  FerroLattice lat(4, 4);
  std::vector<double> w(5, 0.1);
  EXPECT_THROW(lat.set_excitation(w), std::invalid_argument);
}

TEST(Ferro, LangevinHeatsColdLattice) {
  FerroParams p;
  p.gamma = 0.3;
  FerroLattice lat(8, 8, p);
  for (auto& u : lat.field()) u = {0.0, 0.0, lat.well_amplitude()};
  mlmd::Rng rng(21);
  for (int i = 0; i < 500; ++i) lat.step_langevin(0.05, rng);
  // Kinetic energy per mode ~ kT/2.
  double ekin = 0;
  for (const auto& v : lat.velocity())
    ekin += 0.5 * p.mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  ekin /= static_cast<double>(lat.ncells()) * 3.0;
  EXPECT_GT(ekin, 0.005);
  EXPECT_LT(ekin, 0.1);
}

TEST(Ferro, ChiralTermBreaksSymmetry) {
  // With D != 0 the energy of a texture differs from its mirror image.
  FerroParams p;
  p.d = 0.8;
  FerroLattice a(6, 6, p), b(6, 6, p);
  randomize(a, 31, 0.4);
  for (std::size_t i = 0; i < a.ncells(); ++i) {
    b.field()[i] = a.field()[i];
    b.field()[i][0] = -b.field()[i][0]; // mirror x
  }
  EXPECT_GT(std::abs(a.energy() - b.energy()), 1e-6);
}

TEST(Ferro, EnergyExtensive) {
  FerroParams p;
  FerroLattice small(4, 4, p), big(8, 8, p);
  for (auto& u : small.field()) u = {0.0, 0.0, 0.5};
  for (auto& u : big.field()) u = {0.0, 0.0, 0.5};
  EXPECT_NEAR(big.energy(), 4.0 * small.energy(), 1e-9);
}

} // namespace
