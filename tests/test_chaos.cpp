// Chaos-fault lane (DESIGN.md Sec. 15, `ctest -L chaos`): injected
// hangs — stalled peers, stragglers, dropped doorbells, a wedged
// scheduler — must resolve into a typed error or a graceful degrade
// within their configured deadline, never into a test timeout. Every
// case is wall-clock bounded and asserts both the outcome taxonomy
// (ft::StallError / Reject::kDeadline / kOverload / kStopped) and the
// liveness instruments that count the detections.
//
// The ChaosServe and ChaosTransport/*inproc* cases are fork-free and ride
// the tsan aggregate; ChaosShm and the shm-parameterized cases fork
// (TSan cannot follow fork) and get sanitizer coverage from the ubsan
// aggregate instead — same split as test_transport.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mlmd/ft/fault.hpp"
#include "mlmd/obs/metrics.hpp"
#include "mlmd/par/simcomm.hpp"
#include "mlmd/par/transport.hpp"
#include "mlmd/serve/server.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::par;
using namespace mlmd::serve;
namespace ft = mlmd::ft;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Arms a transport progress deadline for the scope, restoring the
/// infinite default on exit so no budget leaks into later tests.
struct ScopedProgressTimeout {
  explicit ScopedProgressTimeout(double seconds) {
    set_progress_timeout(seconds);
  }
  ~ScopedProgressTimeout() { set_progress_timeout(0.0); }
  ScopedProgressTimeout(const ScopedProgressTimeout&) = delete;
  ScopedProgressTimeout& operator=(const ScopedProgressTimeout&) = delete;
};

// --- transport liveness: stalls, stragglers, lost doorbells -----------------

class ChaosTransport : public ::testing::TestWithParam<TransportKind> {
protected:
  TransportKind kind() const { return GetParam(); }
  void run_k(int nranks, const std::function<void(Comm&)>& body) {
    run(nranks, kind(), body);
  }
};

TEST_P(ChaosTransport, PeerStallMidCollectiveResolvesToStallError) {
  // Rank 1 wedges for 750 ms at its barrier entry; with a 150 ms progress
  // budget armed, rank 0's wait must convert the missing peer into a
  // typed StallError long before the sleep ends — never block on it.
  obs::Registry::global().reset();
  ft::ScopedFaults faults("stall@rank=1,ms=750");
  ScopedProgressTimeout budget(0.15);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_k(2, [](Comm& c) { c.barrier(); });
    FAIL() << "expected ft::StallError";
  } catch (const ft::StallError& e) {
    EXPECT_NE(std::string(e.what()).find("no progress"), std::string::npos)
        << e.what();
  }
  // Bounded: detection at ~150 ms plus the staller's 750 ms unwind.
  EXPECT_LT(seconds_since(t0), 10.0);
  // The detector (rank 0: parent-hosted on both backends) counted it.
  EXPECT_GE(obs::Registry::global().counter("simcomm.stalls.detected").value(),
            1u);
}

TEST_P(ChaosTransport, PeerStallMidIrecvResolvesToStallError) {
  // The sender wedges before its send; the receiver is parked in a
  // nonblocking wait(). The stall is detected on the RECEIVING rank —
  // under shm a forked child — so the StallError must cross the process
  // boundary through the tagged error record (ErrTag::kStall).
  ft::ScopedFaults faults("stall@rank=0,ms=750");
  ScopedProgressTimeout budget(0.15);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_k(2, [](Comm& c) {
      if (c.rank() == 0) {
        const std::array<double, 4> d{1.0, 2.0, 3.0, 4.0};
        c.send(1, /*tag=*/3, std::span<const double>(d)); // wedged at entry
      } else {
        auto h = c.irecv(0, 3);
        auto x = c.wait<double>(h); // the wait that must not hang
        (void)x;
      }
    });
    FAIL() << "expected ft::StallError";
  } catch (const ft::StallError& e) {
    EXPECT_NE(std::string(e.what()).find("no progress"), std::string::npos)
        << e.what();
  }
  EXPECT_LT(seconds_since(t0), 10.0);
}

TEST_P(ChaosTransport, SlowRankDegradesGracefullyNeverErrors) {
  // A straggler is not a hang: per-op delays well inside the progress
  // budget must degrade throughput only — every collective still
  // completes with correct values and nothing throws.
  ft::ScopedFaults faults("slow_rank@rank=1,ms=2,count=64");
  ScopedProgressTimeout budget(5.0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(run_k(2, [](Comm& c) {
    for (int i = 0; i < 10; ++i) {
      const double s = c.allreduce(1.0, ReduceOp::kSum);
      if (s != 2.0)
        throw std::runtime_error("allreduce corrupted under straggle");
    }
  }));
  EXPECT_LT(seconds_since(t0), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ChaosTransport,
                         ::testing::Values(TransportKind::kInproc,
                                           TransportKind::kShm),
                         [](const auto& info) {
                           return std::string(transport_name(info.param));
                         });

TEST(ChaosShm, DroppedDoorbellsRecoverViaBoundedParkSlices) {
  // The sender's condvar doorbell is dropped for every message; parked
  // receivers must recover through the bounded park slices (<= 50 ms
  // re-check ceiling) and still deliver every payload intact — a lost
  // wakeup degrades latency, never correctness, and needs no progress
  // budget to survive.
  ft::ScopedFaults faults("drop_doorbell@rank=0,count=8");
  const auto t0 = std::chrono::steady_clock::now();
  run(2, TransportKind::kShm, [](Comm& c) {
    for (int t = 0; t < 8; ++t) {
      if (c.rank() == 0) {
        std::array<double, 4> d{};
        d.fill(static_cast<double>(t));
        c.send(1, t, std::span<const double>(d));
      } else {
        auto d = c.recv<double>(0, t);
        if (d != std::vector<double>(4, static_cast<double>(t)))
          throw std::runtime_error("payload corrupted across lost doorbell");
      }
    }
  });
  // 8 lost doorbells x one 50 ms park ceiling each, plus slack.
  EXPECT_LT(seconds_since(t0), 10.0);
}

// --- serve liveness: deadlines, shedding, drain -----------------------------

pipeline::PipelineOptions chaos_options() {
  pipeline::PipelineOptions opt;
  opt.lattice = 16;
  opt.superlattice = 1;
  opt.relax_steps = 50;
  opt.xs_steps = 30;
  opt.record_every = 5;
  return opt;
}

Request chaos_request(int tenant, long id, bool dark = true) {
  Request req;
  req.tenant = tenant;
  req.id = id;
  req.dark = dark;
  req.opt = chaos_options();
  return req;
}

void expect_bitwise_equal(const pipeline::PipelineResult& a,
                          const pipeline::PipelineResult& b) {
  EXPECT_EQ(a.n_exc, b.n_exc);
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.q_initial, b.q_initial);
  EXPECT_EQ(a.q_final, b.q_final);
  EXPECT_EQ(a.switched, b.switched);
  ASSERT_EQ(a.q_history.size(), b.q_history.size());
  for (std::size_t i = 0; i < a.q_history.size(); ++i)
    EXPECT_EQ(a.q_history[i], b.q_history[i]);
}

TEST(ChaosServe, StalledSchedulerStillReapsDeadlineAndKeepsCheckpoint) {
  // A stall injected into the scheduler round (any-rank entry, matched by
  // the scheduler's rank-agnostic hook) wedges it for 400 ms while the
  // request's 100 ms deadline expires. The reap must fire on the next
  // boundary: typed kDeadline outcome, checkpoint KEPT, and a resubmit of
  // the same id resumes and completes.
  obs::Registry::global().reset();
  namespace fs = std::filesystem;
  const std::string dir = "test_chaos_deadline_ckpt";
  fs::remove_all(dir);
  ServerOptions sopt;
  sopt.checkpoint_dir = dir;
  sopt.checkpoint_every = 5;
  Server server(sopt, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  {
    ft::ScopedFaults faults("stall@ms=400,count=2");
    server.start();
    Request req = chaos_request(0, 1);
    req.deadline_ms = 100.0;
    ASSERT_TRUE(server.submit(req).accepted);
    auto out = server.wait(1);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.reject, Reject::kDeadline);
    EXPECT_NE(out.error.find("deadline"), std::string::npos) << out.error;
  }
  EXPECT_LT(seconds_since(t0), 30.0);
  EXPECT_TRUE(fs::exists(dir + "/session-1.ckpt"));
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("serve.deadline.hits").value(), 1u);
  EXPECT_EQ(reg.counter("serve.deadline.hits.t0").value(), 1u);
  EXPECT_EQ(reg.counter("serve.rejected.deadline").value(), 1u);
  EXPECT_EQ(reg.counter("serve.rejected.deadline.t0").value(), 1u);

  // Resubmit-to-resume: same id, no deadline, faults disarmed.
  ASSERT_TRUE(server.submit(chaos_request(0, 1)).accepted);
  auto out = server.wait(1);
  EXPECT_TRUE(out.ok) << out.error;
  server.stop();
  // Terminal success retires the checkpoint.
  EXPECT_FALSE(fs::exists(dir + "/session-1.ckpt"));
  fs::remove_all(dir);
}

TEST(ChaosServe, RequestExpiredWhileQueuedIsReapedBeforeActivation) {
  // Submitted against a stopped scheduler, the deadline lapses in the
  // queue; activation must reap it before building stages 1-2 for
  // nothing, with the typed queued-deadline message.
  obs::Registry::global().reset();
  Server server({}, nullptr);
  Request req = chaos_request(1, 7);
  req.deadline_ms = 1.0;
  ASSERT_TRUE(server.submit(req).accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.start();
  auto out = server.wait(7);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.reject, Reject::kDeadline);
  EXPECT_NE(out.error.find("while queued"), std::string::npos) << out.error;
  server.stop();
  EXPECT_EQ(obs::Registry::global().counter("serve.deadline.hits.t1").value(),
            1u);
}

TEST(ChaosServe, OverloadShedsWithTypedRejectPastWatermark) {
  // Load shedding is admission-time and p95-driven. The queue-wait
  // histogram is seeded directly (deterministic, no scheduler racing) and
  // the server is never started, so the backlog condition holds: the
  // first submit is admitted (an empty queue never sheds), the second
  // meets p95 >> watermark and is rejected with kOverload.
  obs::Registry::global().reset();
  auto& reg = obs::Registry::global();
  for (int i = 0; i < 100; ++i)
    reg.histogram("serve.queue.wait_seconds").observe(1.0); // p95 ~ 1 s
  ServerOptions sopt;
  sopt.shed_watermark_ms = 100.0;
  Server server(sopt, nullptr);
  EXPECT_TRUE(server.submit(chaos_request(0, 1)).accepted);
  const auto t = server.submit(chaos_request(2, 2));
  EXPECT_FALSE(t.accepted);
  EXPECT_EQ(t.reason, Reject::kOverload);
  EXPECT_STREQ(reject_name(t.reason), "overload");
  EXPECT_EQ(reg.counter("serve.shed").value(), 1u);
  EXPECT_EQ(reg.counter("serve.rejected.overload").value(), 1u);
  EXPECT_EQ(reg.counter("serve.rejected.overload.t2").value(), 1u);
  EXPECT_EQ(reg.counter("serve.requests.rejected").value(), 1u);
}

TEST(ChaosServe, DrainUnderStragglersCheckpointsAndResumesBitIdentical) {
  // The in-process half of the SIGTERM protocol: drain() under injected
  // scheduler straggle must close admission, reap every scenario with
  // kStopped (checkpoints kept), and return promptly; a second server on
  // the same checkpoint dir resumes the load to results bit-identical to
  // dedicated uninterrupted runs.
  obs::Registry::global().reset();
  namespace fs = std::filesystem;
  const std::string dir = "test_chaos_drain_ckpt";
  fs::remove_all(dir);
  const auto ref_a = pipeline::run_pipeline(chaos_options(), /*dark=*/true);
  const auto ref_b = pipeline::run_pipeline(chaos_options(), /*dark=*/false);

  ServerOptions sopt;
  sopt.checkpoint_dir = dir;
  sopt.checkpoint_every = 5;
  {
    // 50 ms per scheduler round: the sessions are reliably mid-flight
    // when the drain lands, whatever the host's speed.
    ft::ScopedFaults faults("slow_rank@ms=50,count=100000");
    Server server(sopt, nullptr);
    server.start();
    ASSERT_TRUE(server.submit(chaos_request(0, 1, /*dark=*/true)).accepted);
    ASSERT_TRUE(server.submit(chaos_request(1, 2, /*dark=*/false)).accepted);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const auto t0 = std::chrono::steady_clock::now();
    server.drain();
    EXPECT_LT(seconds_since(t0), 30.0);
    for (long id : {1L, 2L}) {
      auto out = server.wait(id);
      EXPECT_FALSE(out.ok);
      EXPECT_EQ(out.reject, Reject::kStopped) << out.error;
    }
    // Admission stays closed after the drain.
    EXPECT_EQ(server.submit(chaos_request(0, 3)).reason, Reject::kStopped);
    server.stop();
  }
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("serve.drained").value(), 2u);
  EXPECT_EQ(reg.histogram("serve.drain.seconds").count(), 1u);

  Server resumed(sopt, nullptr);
  resumed.start();
  ASSERT_TRUE(resumed.submit(chaos_request(0, 1, /*dark=*/true)).accepted);
  ASSERT_TRUE(resumed.submit(chaos_request(1, 2, /*dark=*/false)).accepted);
  auto out1 = resumed.wait(1);
  auto out2 = resumed.wait(2);
  ASSERT_TRUE(out1.ok) << out1.error;
  ASSERT_TRUE(out2.ok) << out2.error;
  expect_bitwise_equal(out1.result, ref_a);
  expect_bitwise_equal(out2.result, ref_b);
  resumed.stop();
  fs::remove_all(dir);
}

} // namespace
