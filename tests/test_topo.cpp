// Tests for topological analysis: solid angles, charge quantization of
// painted textures, and initializers.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mlmd/topo/topology.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::topo;

TEST(SolidAngle, OctantIsPiOverTwo) {
  // (x, y, z) unit vectors span one octant of the sphere: area 4pi/8.
  Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_NEAR(solid_angle(x, y, z), std::numbers::pi / 2.0, 1e-12);
  // Swapping two vertices flips orientation.
  EXPECT_NEAR(solid_angle(y, x, z), -std::numbers::pi / 2.0, 1e-12);
}

TEST(SolidAngle, DegenerateTriangleZero) {
  Vec3 a{0, 0, 1};
  EXPECT_NEAR(solid_angle(a, a, a), 0.0, 1e-12);
}

TEST(Topo, UniformFieldZeroCharge) {
  ferro::FerroLattice lat(12, 12);
  init_uniform(lat, +1.0);
  EXPECT_NEAR(topological_charge(lat), 0.0, 1e-9);
}

TEST(Topo, StripesZeroCharge) {
  ferro::FerroLattice lat(16, 16);
  init_stripe_domains(lat, 4);
  EXPECT_NEAR(topological_charge(lat), 0.0, 1e-9);
}

class SkyrmionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkyrmionSweep, SingleSkyrmionUnitCharge) {
  const int sign = GetParam();
  ferro::FerroLattice lat(32, 32);
  init_uniform(lat, +1.0);
  paint_skyrmion(lat, 16.0, 16.0, 5.0, lat.well_amplitude(), sign);
  const double q = topological_charge(lat);
  EXPECT_NEAR(std::abs(q), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Signs, SkyrmionSweep, ::testing::Values(+1, -1));

TEST(Topo, OppositeSignsOppositeCharges) {
  ferro::FerroLattice a(32, 32), b(32, 32);
  init_uniform(a, +1.0);
  init_uniform(b, +1.0);
  paint_skyrmion(a, 16, 16, 5.0, a.well_amplitude(), +1);
  paint_skyrmion(b, 16, 16, 5.0, b.well_amplitude(), -1);
  EXPECT_NEAR(topological_charge(a), -topological_charge(b), 0.1);
}

class SuperlatticeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuperlatticeSweep, ChargeCountsSkyrmions) {
  const std::size_t nsk = GetParam();
  ferro::FerroLattice lat(16 * nsk, 16 * nsk);
  init_skyrmion_superlattice(lat, nsk, nsk);
  const double q = topological_charge(lat);
  EXPECT_NEAR(std::abs(q), static_cast<double>(nsk * nsk),
              0.1 * static_cast<double>(nsk * nsk));
}

INSTANTIATE_TEST_SUITE_P(Counts, SuperlatticeSweep, ::testing::Values(1, 2, 3));

TEST(Topo, ChargeNearlyQuantizedAfterRelaxation) {
  ferro::FerroLattice lat(32, 32);
  init_skyrmion_superlattice(lat, 2, 2);
  const double q0 = topological_charge(lat);
  for (int i = 0; i < 150; ++i) lat.step();
  const double q1 = topological_charge(lat);
  // Topological protection: short relaxation must not change Q.
  EXPECT_NEAR(q1, q0, 0.2);
  // And Q is near an integer.
  EXPECT_NEAR(q1, std::round(q1), 0.15);
}

TEST(Topo, ChargeDensityLocalizedAtSkyrmion) {
  ferro::FerroLattice lat(32, 32);
  init_uniform(lat, +1.0);
  paint_skyrmion(lat, 8.0, 8.0, 4.0, lat.well_amplitude(), +1);
  auto q = charge_density(lat.field(), 32, 32);
  // Density near the core dominates density far away.
  double near = 0, far = 0;
  for (std::size_t x = 0; x < 32; ++x)
    for (std::size_t y = 0; y < 32; ++y) {
      const double dx = static_cast<double>(x) - 8.0;
      const double dy = static_cast<double>(y) - 8.0;
      if (dx * dx + dy * dy < 64.0)
        near += std::abs(q[x * 32 + y]);
      else if (dx * dx + dy * dy > 196.0)
        far += std::abs(q[x * 32 + y]);
    }
  EXPECT_GT(near, 10.0 * far);
}

TEST(Topo, CountChargedPlaquettes) {
  ferro::FerroLattice lat(32, 32);
  init_uniform(lat, +1.0);
  EXPECT_EQ(count_charged_plaquettes(lat), 0u);
  paint_skyrmion(lat, 16, 16, 4.0, lat.well_amplitude(), +1);
  EXPECT_GT(count_charged_plaquettes(lat, 0.01), 0u);
}

TEST(Topo, ZeroCellsAreSkipped) {
  ferro::FerroLattice lat(8, 8);
  // All-zero field: undefined direction -> contributes zero, not NaN.
  const double q = topological_charge(lat);
  EXPECT_DOUBLE_EQ(q, 0.0);
  EXPECT_FALSE(std::isnan(q));
}

} // namespace
