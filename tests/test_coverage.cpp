// Cross-cutting edge-case coverage: identities at zero time step, cutoff
// continuity, degenerate layouts (empty band slices), linearity of the
// EM solver, and misc container/model invariants that the per-module
// suites don't pin down.

#include <gtest/gtest.h>

#include <cmath>

#include "mlmd/common/rng.hpp"
#include "mlmd/lfd/band_decomp.hpp"
#include "mlmd/lfd/fermi.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/lfd/vloc.hpp"
#include "mlmd/common/units.hpp"
#include "mlmd/la/gemm.hpp"
#include "mlmd/maxwell/maxwell1d.hpp"
#include "mlmd/qxmd/pair_potential.hpp"
#include "mlmd/topo/topology.hpp"

namespace {

using namespace mlmd;

TEST(ZeroStep, KinPropIdentity) {
  grid::Grid3 g{6, 6, 6, 0.6, 0.6, 0.6};
  lfd::SoAWave<double> w(g, 3);
  lfd::init_plane_waves(w);
  auto before = w.psi;
  lfd::KinParams p;
  p.dt = 0.0;
  lfd::kin_prop(w, p, lfd::KinVariant::kReordered);
  EXPECT_LT(la::max_abs_diff(w.psi, before), 1e-15);
  lfd::kin_prop(w, p, lfd::KinVariant::kParallel);
  EXPECT_LT(la::max_abs_diff(w.psi, before), 1e-15);
}

TEST(ZeroStep, VlocPropIdentity) {
  grid::Grid3 g{6, 6, 6, 0.6, 0.6, 0.6};
  lfd::SoAWave<double> w(g, 2);
  lfd::init_plane_waves(w);
  auto before = w.psi;
  std::vector<double> v(g.size(), 1.7);
  lfd::vloc_prop(w, v, 0.0);
  EXPECT_LT(la::max_abs_diff(w.psi, before), 1e-15);
}

TEST(LjCutoff, ShiftedForceContinuity) {
  // The shifted-force form: both U and dU vanish at the cutoff, so a pair
  // crossing rc contributes continuously.
  qxmd::LjParams p;
  p.rc = 9.0;
  qxmd::Atoms atoms;
  atoms.resize(2);
  atoms.box = {40, 40, 40};
  atoms.pos(0)[0] = atoms.pos(0)[1] = atoms.pos(0)[2] = 20;
  atoms.pos(1)[1] = atoms.pos(1)[2] = 20;

  auto energy_at = [&](double r) {
    atoms.pos(1)[0] = 20 + r;
    qxmd::NeighborList nl(atoms, p.rc + 1.0);
    std::vector<double> f;
    return qxmd::lj_energy_forces(atoms, nl, p, f);
  };
  EXPECT_NEAR(energy_at(p.rc - 1e-6), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(energy_at(p.rc + 0.1), 0.0);
}

TEST(Maxwell1D, LinearSuperpositionOfSources) {
  // The vacuum solver is linear: the field of two current sources equals
  // the sum of their individual fields.
  const std::size_t n = 48;
  const double dx = 10.0, dt = 0.4 * dx / units::c_light;
  auto run = [&](bool s1, bool s2) {
    maxwell::Maxwell1D em(n, dx, dt);
    std::vector<double> j(n, 0.0);
    for (int step = 0; step < 60; ++step) {
      j.assign(n, 0.0);
      if (s1) j[10] = 1e-3 * std::sin(0.3 * step);
      if (s2) j[30] = 2e-3 * std::cos(0.2 * step);
      em.step(j);
    }
    std::vector<double> a(em.a().begin(), em.a().end());
    return a;
  };
  auto a1 = run(true, false);
  auto a2 = run(false, true);
  auto a12 = run(true, true);
  for (std::size_t c = 0; c < n; ++c)
    EXPECT_NEAR(a12[c], a1[c] + a2[c], 1e-12) << c;
}

TEST(BandLayout, MoreRanksThanOrbitalsGivesEmptySlices) {
  // 5 ranks, 3 orbitals: two ranks own nothing; all distributed ops must
  // still agree with the serial result.
  const std::size_t ngrid = 27, norb = 3;
  mlmd::Rng rng(3);
  la::Matrix<std::complex<double>> psi(ngrid, norb);
  for (std::size_t i = 0; i < psi.size(); ++i)
    psi.data()[i] = std::complex<double>(rng.normal(), rng.normal());
  la::Matrix<std::complex<double>> serial(norb, norb);
  la::gemm(la::Trans::kC, la::Trans::kN, std::complex<double>(0.1, 0.0), psi, psi,
           std::complex<double>{}, serial);

  par::run(5, [&](par::Comm& comm) {
    auto layout = lfd::BandLayout::split(comm, norb);
    la::Matrix<std::complex<double>> slice(ngrid, layout.nlocal());
    for (std::size_t g = 0; g < ngrid; ++g)
      for (std::size_t s = layout.s0; s < layout.s1; ++s)
        slice(g, s - layout.s0) = psi(g, s);
    auto s = lfd::distributed_overlap(comm, layout, slice, slice, 0.1);
    EXPECT_LT(la::max_abs_diff(s, serial), 1e-11);
  });
}

TEST(Fermi, SpinlessChannel) {
  std::vector<double> e = {-1.0, 0.0, 1.0};
  auto r = lfd::fermi_occupations(e, 2.0, 0.01, /*f_max=*/1.0);
  EXPECT_NEAR(r.f[0], 1.0, 1e-6);
  EXPECT_NEAR(r.f[1], 1.0, 1e-6);
  EXPECT_NEAR(r.f[2], 0.0, 1e-6);
}

TEST(Topo, ChargeDensitySumsToTotalCharge) {
  ferro::FerroLattice lat(24, 24);
  topo::init_skyrmion_superlattice(lat, 2, 2);
  auto q = topo::charge_density(lat.field(), 24, 24);
  double sum = 0;
  for (double v : q) sum += v;
  EXPECT_NEAR(sum, topo::topological_charge(lat), 1e-12);
}

TEST(Matrix, FroNormKnownValue) {
  la::Matrix<double> m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(la::fro_norm(m), 5.0);
}

TEST(Pulse, PeakVectorPotentialScale) {
  maxwell::Pulse p;
  p.e0 = 0.02;
  p.omega = 0.1;
  p.t0 = 500.0;
  p.fwhm = 4000.0; // long envelope: A0 ~ c E0/omega
  double max_a = 0;
  for (double t = 400; t < 600; t += 1.0) max_a = std::max(max_a, std::abs(p.apot(t)));
  EXPECT_NEAR(max_a, units::c_light * p.e0 / p.omega, 0.05 * max_a);
}

TEST(IonicPotential, SuperpositionOfWells) {
  grid::Grid3 g{8, 8, 8, 0.7, 0.7, 0.7};
  lfd::Ion a{1.0, 1.0, 1.0, 2.0, 1.0, 2.0};
  lfd::Ion b{4.0, 4.0, 4.0, 1.0, 1.5, 2.0};
  auto va = lfd::ionic_potential(g, {a});
  auto vb = lfd::ionic_potential(g, {b});
  auto vab = lfd::ionic_potential(g, {a, b});
  for (std::size_t i = 0; i < vab.size(); ++i)
    EXPECT_NEAR(vab[i], va[i] + vb[i], 1e-12);
}

} // namespace
