// Tests for the extension batch: XYZ trajectory I/O, the PZ81 LDA
// functional, polar vortex textures and in-plane winding, distributed
// density, and band-parallel propagation matching the serial domain.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "mlmd/lfd/band_decomp.hpp"
#include "mlmd/lfd/density.hpp"
#include "mlmd/lfd/nlp_prop.hpp"
#include "mlmd/lfd/propagator.hpp"
#include "mlmd/lfd/vloc.hpp"
#include "mlmd/qxmd/xyz.hpp"
#include "mlmd/topo/topology.hpp"

namespace {

using namespace mlmd;

// --- XYZ trajectory I/O ---------------------------------------------------

TEST(Xyz, RoundTripFrames) {
  auto atoms = qxmd::make_cubic_lattice(2, 2, 2, 3.5, 100.0);
  atoms.type[3] = 2;
  const std::string path = ::testing::TempDir() + "traj.xyz";
  std::remove(path.c_str());
  qxmd::append_xyz(atoms, path, "frame 0");
  atoms.pos(0)[0] += 0.5;
  qxmd::append_xyz(atoms, path, "frame 1");

  auto frames = qxmd::read_xyz(path);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].n(), 8u);
  EXPECT_DOUBLE_EQ(frames[0].box.lx, 7.0);
  EXPECT_EQ(frames[0].type[3], 2);
  EXPECT_NEAR(frames[1].pos(0)[0] - frames[0].pos(0)[0], 0.5, 1e-9);
  std::remove(path.c_str());
}

TEST(Xyz, MissingFileThrows) {
  EXPECT_THROW(qxmd::read_xyz("/nonexistent/t.xyz"), std::runtime_error);
}

// --- PZ81 LDA ---------------------------------------------------------------

TEST(LdaPz, PotentialIsDensityDerivativeOfEnergy) {
  // v_xc = d(rho * exc)/drho: check against a numerical derivative on
  // both sides of the rs = 1 seam.
  for (double rho : {0.001, 0.01, 0.1, 0.2385, 0.5, 2.0}) {
    const double eps = 1e-7 * rho;
    const double num = ((rho + eps) * lfd::lda_pz_exc(rho + eps) -
                        (rho - eps) * lfd::lda_pz_exc(rho - eps)) /
                       (2.0 * eps);
    EXPECT_NEAR(lfd::lda_pz_vxc(rho), num, 5e-5 * std::abs(num) + 1e-9) << rho;
  }
}

TEST(LdaPz, CorrelationLowersEnergyBelowExchange) {
  for (double rho : {0.01, 0.1, 1.0}) {
    const double ex_only = -0.75 * std::cbrt(3.0 * rho * std::numbers::inv_pi);
    EXPECT_LT(lfd::lda_pz_exc(rho), ex_only) << rho;
  }
}

TEST(LdaPz, ZeroDensitySafe) {
  EXPECT_DOUBLE_EQ(lfd::lda_pz_exc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lfd::lda_pz_vxc(0.0), 0.0);
}

TEST(LdaPz, AddPotentialDeepensSlater) {
  std::vector<double> rho = {0.05, 0.2, 1.0};
  std::vector<double> v_x(3, 0.0), v_xc(3, 0.0);
  lfd::add_xc_potential(rho, v_x);
  lfd::add_xc_potential_pz(rho, v_xc);
  for (int i = 0; i < 3; ++i) EXPECT_LT(v_xc[static_cast<std::size_t>(i)],
                                        v_x[static_cast<std::size_t>(i)]);
}

// --- vortices ---------------------------------------------------------------

TEST(Vortex, WindingMatchesPainted) {
  ferro::FerroLattice lat(24, 24);
  topo::paint_vortex(lat, 12, 12, 0.8, +1);
  EXPECT_NEAR(topo::in_plane_winding(lat, 12, 12, 8.0), 1.0, 0.05);
  topo::paint_vortex(lat, 12, 12, 0.8, -1);
  EXPECT_NEAR(topo::in_plane_winding(lat, 12, 12, 8.0), -1.0, 0.05);
  topo::paint_vortex(lat, 12, 12, 0.8, +2);
  EXPECT_NEAR(topo::in_plane_winding(lat, 12, 12, 8.0), 2.0, 0.1);
}

TEST(Vortex, EscapedCoreHasMeronHalfCharge) {
  // A vortex whose core escapes into +z covers half the sphere: the
  // charge density integrated over the core disc is |Q| = 1/2 (a meron).
  // (The lattice-total charge is an integer on a torus — the compensating
  // density lives at the periodic seam — so the measurement is local.)
  ferro::FerroLattice lat(32, 32);
  topo::paint_vortex(lat, 16, 16, 0.8, +1, 3.0);
  auto q = topo::charge_density(lat.field(), 32, 32);
  double q_core = 0.0;
  for (int x = 0; x < 32; ++x)
    for (int y = 0; y < 32; ++y) {
      const double dx = x - 16.0, dy = y - 16.0;
      if (dx * dx + dy * dy < 100.0)
        q_core += q[static_cast<std::size_t>(x * 32 + y)];
    }
  EXPECT_NEAR(std::abs(q_core), 0.5, 0.1);
}

TEST(Vortex, UniformFieldHasNoWinding) {
  ferro::FerroLattice lat(16, 16);
  for (auto& u : lat.field()) u = {0.3, 0.1, 0.5};
  EXPECT_NEAR(topo::in_plane_winding(lat, 8, 8, 5.0), 0.0, 1e-9);
}

// --- distributed density & band-parallel propagation ------------------------

TEST(BandParallel, DistributedDensityMatchesSerial) {
  grid::Grid3 g{6, 6, 6, 0.6, 0.6, 0.6};
  lfd::SoAWave<double> w(g, 6);
  lfd::init_plane_waves(w);
  std::vector<double> f = {2.0, 2.0, 1.0, 0.5, 0.0, 0.0};
  auto rho_serial = lfd::density(w, f);

  par::run(3, [&](par::Comm& comm) {
    auto layout = lfd::BandLayout::split(comm, 6);
    la::Matrix<std::complex<double>> slice(g.size(), layout.nlocal());
    std::vector<double> f_slice;
    for (std::size_t gp = 0; gp < g.size(); ++gp)
      for (std::size_t s = layout.s0; s < layout.s1; ++s)
        slice(gp, s - layout.s0) = w.at(gp, s);
    for (std::size_t s = layout.s0; s < layout.s1; ++s) f_slice.push_back(f[s]);
    auto rho = lfd::distributed_density(comm, slice, f_slice);
    ASSERT_EQ(rho.size(), rho_serial.size());
    for (std::size_t i = 0; i < rho.size(); ++i)
      EXPECT_NEAR(rho[i], rho_serial[i], 1e-12);
  });
}

TEST(BandParallel, PropagationMatchesSerialDomain) {
  // Full integration: propagate band-distributed orbitals (grid-local
  // kinetic/potential on slices + distributed nonlocal correction) and
  // compare the final density against the serial propagation.
  grid::Grid3 g{6, 6, 6, 0.6, 0.6, 0.6};
  const std::size_t norb = 4;
  lfd::SoAWave<double> serial(g, norb);
  lfd::init_plane_waves(serial);
  auto psi0 = serial.psi;
  std::vector<double> vloc(g.size());
  for (std::size_t i = 0; i < vloc.size(); ++i) vloc[i] = 0.1 * std::cos(0.3 * i);
  std::vector<double> f = {2.0, 2.0, 0.0, 0.0};

  lfd::KinParams kin;
  kin.dt = 0.05;
  const std::complex<double> delta(0.0, -0.02);
  const int nsteps = 5;
  for (int step = 0; step < nsteps; ++step) {
    lfd::split_step(serial, vloc, kin, lfd::PropOrder::kSecond,
                    lfd::KinVariant::kReordered);
    lfd::nlp_prop(serial, psi0, delta);
  }
  auto rho_serial = lfd::density(serial, f);

  par::run(2, [&](par::Comm& comm) {
    auto layout = lfd::BandLayout::split(comm, norb);
    // Build this rank's slice as a wavefunction with nlocal orbitals so
    // the grid-local kernels run unchanged on it.
    lfd::SoAWave<double> wslice(g, layout.nlocal());
    la::Matrix<std::complex<double>> psi0_slice(g.size(), layout.nlocal());
    lfd::SoAWave<double> init(g, norb);
    lfd::init_plane_waves(init);
    std::vector<double> f_slice;
    for (std::size_t gp = 0; gp < g.size(); ++gp)
      for (std::size_t s = layout.s0; s < layout.s1; ++s) {
        wslice.at(gp, s - layout.s0) = init.at(gp, s);
        psi0_slice(gp, s - layout.s0) = init.at(gp, s);
      }
    for (std::size_t s = layout.s0; s < layout.s1; ++s) f_slice.push_back(f[s]);

    for (int step = 0; step < nsteps; ++step) {
      lfd::split_step(wslice, vloc, kin, lfd::PropOrder::kSecond,
                      lfd::KinVariant::kReordered);
      lfd::distributed_nlp_prop(comm, layout, g, wslice.psi, psi0_slice, delta);
    }
    auto rho = lfd::distributed_density(comm, wslice.psi, f_slice);
    for (std::size_t i = 0; i < rho.size(); ++i)
      EXPECT_NEAR(rho[i], rho_serial[i], 1e-9);
  });
}

} // namespace
