// Fault-matrix coverage for mlmd::ft (DESIGN.md Sec. 10): checkpoint
// container integrity and bitwise-identical restart, deterministic fault
// injection through the SimComm and step-loop hooks, bounded transient
// retry, the three sentinel recovery policies on the pipeline, graceful
// degradation (fidelity + MD driver), and the CLI unknown-flag guard.
//
// Labeled `ft`, `tsan`, and `ubsan`: the SimComm tests run real rank
// threads, so the whole file must stay clean under ThreadSanitizer and
// UndefinedBehaviorSanitizer.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "mlmd/common/cli.hpp"
#include "mlmd/ft/checkpoint.hpp"
#include "mlmd/ft/fault.hpp"
#include "mlmd/ft/guard.hpp"
#include "mlmd/ft/io.hpp"
#include "mlmd/mlmd/pipeline.hpp"
#include "mlmd/nnq/fidelity.hpp"
#include "mlmd/nnq/md_driver.hpp"
#include "mlmd/par/simcomm.hpp"

namespace {

using namespace mlmd;

/// Removes a test artifact (and its .tmp sibling) on scope exit, so a
/// failing assertion cannot leak files into the build tree.
struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {}
  ~ScopedFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool file_exists(const std::string& path) {
  if (std::FILE* fp = std::fopen(path.c_str(), "rb")) {
    std::fclose(fp);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ft::Checkpoint container
// ---------------------------------------------------------------------------

TEST(Checkpoint, RoundtripsPodAndVectorSections) {
  ScopedFile f("test_ft_roundtrip.ckpt");
  ft::CheckpointWriter w;
  w.add_pod("scalar", 42L);
  w.add_pod("real", 3.25);
  w.add_vec("vec", std::vector<double>{1.5, -2.5, 1e300});
  w.add_vec("empty", std::vector<int>{});
  w.write(f.path);

  ft::CheckpointReader r(f.path);
  EXPECT_EQ(r.pod<long>("scalar"), 42L);
  EXPECT_EQ(r.pod<double>("real"), 3.25);
  EXPECT_EQ(r.vec<double>("vec"), (std::vector<double>{1.5, -2.5, 1e300}));
  EXPECT_TRUE(r.vec<int>("empty").empty());
  EXPECT_EQ(r.names(), (std::vector<std::string>{"empty", "real", "scalar",
                                                 "vec"}));
}

TEST(Checkpoint, MissingSectionAndWrongSizeThrow) {
  ScopedFile f("test_ft_missing.ckpt");
  ft::CheckpointWriter w;
  w.add_pod("x", 1.0);
  w.write(f.path);

  ft::CheckpointReader r(f.path);
  EXPECT_THROW(r.raw("absent"), std::runtime_error);
  EXPECT_THROW(r.pod<int>("x"), std::runtime_error); // 8 bytes read as 4
}

TEST(Checkpoint, CorruptionIsDetectedByCrc) {
  ScopedFile f("test_ft_corrupt.ckpt");
  ft::CheckpointWriter w;
  w.add_vec("payload", std::vector<double>(64, 1.0));
  w.write(f.path);

  // Flip one byte in the middle of the payload; the CRC trailer must
  // reject the file instead of handing back a torn snapshot.
  std::FILE* fp = std::fopen(f.path.c_str(), "rb+");
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(std::fseek(fp, 100, SEEK_SET), 0);
  const unsigned char bad = 0xFF;
  ASSERT_EQ(std::fwrite(&bad, 1, 1, fp), 1u);
  std::fclose(fp);

  EXPECT_THROW(ft::CheckpointReader r(f.path), std::runtime_error);
}

TEST(Checkpoint, BadMagicIsRejected) {
  ScopedFile f("test_ft_badmagic.ckpt");
  std::FILE* fp = std::fopen(f.path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  std::fputs("NOTACKPTxxxxxxxxxxxxxxxx", fp);
  std::fclose(fp);
  EXPECT_THROW(ft::CheckpointReader r(f.path), std::runtime_error);
}

TEST(Checkpoint, AtomicWriteLeavesNoTempFile) {
  ScopedFile f("test_ft_atomic.ckpt");
  ft::CheckpointWriter w;
  w.add_pod("x", 7);
  w.write(f.path);
  EXPECT_TRUE(file_exists(f.path));
  EXPECT_FALSE(file_exists(f.path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Fault-plan parsing and hook firing
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKindAndKey) {
  auto plan = ft::parse_faults(
      "rank_crash@step=40,rank=2; exchange_fail@step=10,p=0.5,seed=7,count=3;"
      "bitflip@rank=1;nan_force@step=25; inf_field");
  const auto& s = plan.specs();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0].kind, ft::FaultKind::kRankCrash);
  EXPECT_EQ(s[0].step, 40);
  EXPECT_EQ(s[0].rank, 2);
  EXPECT_EQ(s[1].kind, ft::FaultKind::kExchangeFail);
  EXPECT_DOUBLE_EQ(s[1].p, 0.5);
  EXPECT_EQ(s[1].seed, 7u);
  EXPECT_EQ(s[1].count, 3);
  EXPECT_EQ(s[2].kind, ft::FaultKind::kBitFlip);
  EXPECT_EQ(s[2].step, -1); // any step
  EXPECT_EQ(s[3].kind, ft::FaultKind::kNanForce);
  EXPECT_EQ(s[4].kind, ft::FaultKind::kInfField);
  EXPECT_EQ(s[4].count, 1); // default
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(ft::parse_faults("frobnicate@step=1"), std::invalid_argument);
  EXPECT_THROW(ft::parse_faults("nan_force@bogus=1"), std::invalid_argument);
  EXPECT_THROW(ft::parse_faults("nan_force@step=xyz"), std::invalid_argument);
  EXPECT_THROW(ft::parse_faults("exchange_fail@p=1.5"), std::invalid_argument);
  EXPECT_THROW(ft::parse_faults("nan_force@count=0"), std::invalid_argument);
  EXPECT_TRUE(ft::parse_faults("").specs().empty());
}

TEST(FaultPlan, DisarmedHooksAreNoOps) {
  ASSERT_FALSE(ft::armed());
  std::vector<double> f(4, 1.0);
  EXPECT_FALSE(ft::hook_forces(0, f.data(), f.size()));
  EXPECT_FALSE(ft::hook_fields(0, f.data(), f.size()));
  for (double x : f) EXPECT_EQ(x, 1.0);
}

TEST(FaultPlan, NanForceFiresOnceAtItsStep) {
  ft::ScopedFaults faults("nan_force@step=2");
  std::vector<double> f(8, 1.0);
  EXPECT_FALSE(ft::hook_forces(0, f.data(), f.size()));
  EXPECT_FALSE(ft::hook_forces(1, f.data(), f.size()));
  EXPECT_TRUE(ft::hook_forces(2, f.data(), f.size()));
  int nans = 0;
  for (double x : f)
    if (std::isnan(x)) ++nans;
  EXPECT_EQ(nans, 1);
  // count=1 (default): replaying the step does not re-fire, so a
  // rollback that repeats it converges.
  std::vector<double> g(8, 1.0);
  EXPECT_FALSE(ft::hook_forces(2, g.data(), g.size()));
  EXPECT_EQ(ft::active_plan()->fired(), 1);
}

TEST(FaultPlan, InjectedNanSurvivesEveryAllreduceOp) {
  // Regression: kMin/kMax folded with plain comparisons, which are false
  // for NaN, so a nan_force poison injected on one rank silently lost to
  // any finite contribution and the downstream NaN sentinels never fired.
  // The poison must reach every rank under all three reduce operators.
  for (par::ReduceOp op :
       {par::ReduceOp::kSum, par::ReduceOp::kMin, par::ReduceOp::kMax}) {
    ft::ScopedFaults faults("nan_force@step=1");
    std::array<int, 3> nan_seen{};
    par::run(3, [&](par::Comm& c) {
      std::vector<double> f(4, 1.0 + static_cast<double>(c.rank()));
      if (c.rank() == 1) ft::hook_forces(1, f.data(), f.size());
      const auto red = c.allreduce(std::span<const double>(f), op);
      for (double x : red)
        if (std::isnan(x)) nan_seen[static_cast<std::size_t>(c.rank())] = 1;
    });
    EXPECT_EQ(ft::active_plan()->fired(), 1);
    for (int s : nan_seen)
      EXPECT_EQ(s, 1) << "NaN lost under op " << static_cast<int>(op);
  }
}

TEST(FaultPlan, BitflipCorruptsOneCollectivePayload) {
  ft::ScopedFaults faults("bitflip@rank=0,seed=9");
  const std::vector<double> original = {1.0, 2.0, 3.0};
  std::array<std::vector<double>, 2> received;
  par::run(2, [&](par::Comm& c) {
    std::vector<double> data = original;
    c.broadcast(data, 0);
    received[static_cast<std::size_t>(c.rank())] = std::move(data);
  });
  EXPECT_EQ(ft::active_plan()->fired(), 1);
  // Rank 0's deposited contribution was flipped in transit, so every
  // rank (root included) received the corrupted copy: exactly one
  // element's bit pattern differs from the original.
  for (const auto& got : received) {
    ASSERT_EQ(got.size(), original.size());
    int diffs = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
      if (std::memcmp(&got[i], &original[i], sizeof(double)) != 0) ++diffs;
    EXPECT_EQ(diffs, 1);
  }
}

// ---------------------------------------------------------------------------
// SimComm: abort-poison root cause + injected crashes + transient retry
// ---------------------------------------------------------------------------

// Regression (this PR's SimComm bugfix): surviving ranks used to unwind
// with a generic "SimComm aborted" error and run() rethrew the same —
// the first-throwing rank's original message was lost. Now run()
// rethrows the original exception and the poison reason names the rank
// and its what().
TEST(SimComm, AbortSurfacesOriginalExceptionMessage) {
  std::string survivor_saw;
  try {
    par::run(2, [&](par::Comm& c) {
      if (c.rank() == 1) throw std::runtime_error("original failure detail");
      try {
        c.barrier();
      } catch (const std::exception& e) {
        survivor_saw = e.what();
        throw;
      }
    });
    FAIL() << "run() must rethrow the rank-1 exception";
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "original failure detail");
  }
  EXPECT_NE(survivor_saw.find("rank 1 threw: original failure detail"),
            std::string::npos)
      << "survivor saw: " << survivor_saw;
}

TEST(SimComm, InjectedRankCrashPoisonsThenRestartSucceeds) {
  ft::ScopedFaults faults("rank_crash@step=0,rank=1");
  auto body = [](par::Comm& c) {
    c.barrier();
    const int sum = c.allreduce(1, par::ReduceOp::kSum);
    EXPECT_EQ(sum, c.size());
  };
  EXPECT_THROW(par::run(2, body), ft::InjectedCrash);
  // The crash budget (count=1) is spent: the restarted run — the
  // checkpoint/restart story at SimComm level — completes cleanly.
  EXPECT_NO_THROW(par::run(2, body));
}

TEST(SimComm, TransientExchangeFailureIsRetriedToSuccess) {
  ft::ScopedFaults faults("exchange_fail@count=2");
  par::run(2, [](par::Comm& c) {
    const double sum = ft::with_retry(
        [&] { return c.allreduce(1.0, par::ReduceOp::kSum); });
    EXPECT_DOUBLE_EQ(sum, 2.0);
  });
  EXPECT_EQ(ft::active_plan()->fired(), 2);
}

// ---------------------------------------------------------------------------
// with_retry
// ---------------------------------------------------------------------------

TEST(WithRetry, RecoversAfterTransientFailures) {
  int calls = 0;
  const int v = ft::with_retry([&] {
    if (++calls < 3) throw ft::TransientCommFault("flaky");
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);
}

TEST(WithRetry, ExhaustsBudgetAndRethrows) {
  ft::RetryOptions opt;
  opt.max_attempts = 2;
  int calls = 0;
  EXPECT_THROW(ft::with_retry(
                   [&]() -> void {
                     ++calls;
                     throw ft::TransientCommFault("always");
                   },
                   opt),
               ft::TransientError);
  EXPECT_EQ(calls, 2);
}

TEST(WithRetry, NonTransientErrorsPropagateImmediately) {
  int calls = 0;
  EXPECT_THROW(ft::with_retry([&]() -> void {
                 ++calls;
                 throw std::logic_error("not transient");
               }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

namespace {
std::vector<double>& recorded_backoffs() {
  static std::vector<double> v;
  return v;
}
void recording_sleep(double seconds) { recorded_backoffs().push_back(seconds); }
} // namespace

TEST(WithRetry, BackoffScheduleIsInjectableAndExponential) {
  // The injectable clock (ISSUE 9 satellite): the backoff sleeps route
  // through set_backoff_sleep, so the exponential schedule is asserted
  // exactly, with zero wall-clock time spent — the serve retry paths test
  // the same way.
  recorded_backoffs().clear();
  ASSERT_EQ(ft::set_backoff_sleep(&recording_sleep), nullptr);
  ft::RetryOptions opt;
  opt.max_attempts = 4;
  opt.backoff_seconds = 0.25;
  opt.backoff_multiplier = 2.0;
  int calls = 0;
  EXPECT_THROW(ft::with_retry(
                   [&]() -> void {
                     ++calls;
                     throw ft::TransientCommFault("always");
                   },
                   opt),
               ft::TransientError);
  EXPECT_EQ(ft::set_backoff_sleep(nullptr), &recording_sleep);
  EXPECT_EQ(calls, 4);
  ASSERT_EQ(recorded_backoffs().size(), 3u); // no sleep after the last try
  EXPECT_DOUBLE_EQ(recorded_backoffs()[0], 0.25);
  EXPECT_DOUBLE_EQ(recorded_backoffs()[1], 0.5);
  EXPECT_DOUBLE_EQ(recorded_backoffs()[2], 1.0);
}

TEST(WithRetry, JitterIsDeterministicFromItsSeed) {
  // Jitter decorrelates retry storms across ranks, but must stay
  // reproducible: the perturbed schedule is a pure function of
  // jitter_seed, asserted exactly by replaying the same Rng stream.
  recorded_backoffs().clear();
  ASSERT_EQ(ft::set_backoff_sleep(&recording_sleep), nullptr);
  ft::RetryOptions opt;
  opt.max_attempts = 4;
  opt.backoff_seconds = 0.25;
  opt.backoff_multiplier = 2.0;
  opt.jitter = 0.5;
  opt.jitter_seed = 17;
  EXPECT_THROW(ft::with_retry(
                   [&]() -> void { throw ft::TransientCommFault("always"); },
                   opt),
               ft::TransientError);
  EXPECT_EQ(ft::set_backoff_sleep(nullptr), &recording_sleep);
  ASSERT_EQ(recorded_backoffs().size(), 3u);
  Rng replay(opt.jitter_seed);
  const std::array<double, 3> base = {0.25, 0.5, 1.0};
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double expect =
        base[i] * (1.0 + opt.jitter * (replay.uniform() - 0.5));
    EXPECT_DOUBLE_EQ(recorded_backoffs()[i], expect);
    // jitter=0.5 bounds every sleep within +/-25% of the exponential base.
    EXPECT_GE(recorded_backoffs()[i], base[i] * 0.75);
    EXPECT_LE(recorded_backoffs()[i], base[i] * 1.25);
  }
}

TEST(WithRetry, TotalElapsedCapTruncatesLastSleepAndStops) {
  // max_total_seconds bounds the whole retry episode, not just the
  // attempt count: the sleep that would overshoot is truncated to land
  // exactly on the cap, and the next failure rethrows with budget spent.
  recorded_backoffs().clear();
  ASSERT_EQ(ft::set_backoff_sleep(&recording_sleep), nullptr);
  ft::RetryOptions opt;
  opt.max_attempts = 10;
  opt.backoff_seconds = 0.25;
  opt.backoff_multiplier = 2.0;
  opt.max_total_seconds = 0.6;
  int calls = 0;
  EXPECT_THROW(ft::with_retry(
                   [&]() -> void {
                     ++calls;
                     throw ft::TransientCommFault("always");
                   },
                   opt),
               ft::TransientError);
  EXPECT_EQ(ft::set_backoff_sleep(nullptr), &recording_sleep);
  EXPECT_EQ(calls, 3); // budget exhausted long before max_attempts
  ASSERT_EQ(recorded_backoffs().size(), 2u);
  EXPECT_DOUBLE_EQ(recorded_backoffs()[0], 0.25);
  EXPECT_DOUBLE_EQ(recorded_backoffs()[1], 0.35); // 0.5 truncated to the cap
  EXPECT_DOUBLE_EQ(recorded_backoffs()[0] + recorded_backoffs()[1], 0.6);
}

// ---------------------------------------------------------------------------
// StepSentinel
// ---------------------------------------------------------------------------

TEST(StepSentinel, DisabledSentinelNeverTrips) {
  ft::StepSentinel s; // GuardOptions.enabled defaults to false
  const std::vector<double> bad = {std::nan("")};
  EXPECT_TRUE(s.check_values("x", bad));
  EXPECT_TRUE(s.check_energy("e", std::numeric_limits<double>::infinity()));
  EXPECT_EQ(s.trips(), 0);
}

TEST(StepSentinel, DetectsNonFiniteAndOutOfBoundValues) {
  ft::GuardOptions opt;
  opt.enabled = true;
  opt.max_abs = 10.0;
  ft::StepSentinel s(opt);
  EXPECT_TRUE(s.check_values("f", std::vector<double>{1.0, -9.9}));
  EXPECT_FALSE(s.check_values("f", std::vector<double>{1.0, std::nan("")}));
  EXPECT_FALSE(s.check_values("f", std::vector<double>{11.0}));
  EXPECT_EQ(s.trips(), 2);
  EXPECT_NE(s.last_what().find("f"), std::string::npos);
}

TEST(StepSentinel, DetectsEnergyDriftAgainstFirstReference) {
  ft::GuardOptions opt;
  opt.enabled = true;
  opt.max_energy_drift = 0.1;
  ft::StepSentinel s(opt);
  EXPECT_TRUE(s.check_energy("e", 100.0)); // sets the reference
  EXPECT_TRUE(s.check_energy("e", 105.0)); // 5% drift: ok
  EXPECT_FALSE(s.check_energy("e", 130.0)); // 30% drift: trip
  s.reset_energy_reference();
  EXPECT_TRUE(s.check_energy("e", 130.0)); // new baseline after restore
}

// ---------------------------------------------------------------------------
// NnqmdDriver checkpoint/restart + degradation
// ---------------------------------------------------------------------------

nnq::AtomModel test_model(unsigned long long seed = 99) {
  return nnq::AtomModel(nnq::RadialBasis::make(5, 1.5, 6.5, 1.2), {12, 8},
                        seed);
}

qxmd::Atoms test_atoms(unsigned long long seed = 1) {
  auto atoms = qxmd::make_cubic_lattice(2, 2, 2, 4.5, 200.0);
  Rng rng(seed);
  for (auto& x : atoms.r) x += 0.1 * rng.normal();
  return atoms;
}

// The acceptance-criterion property: 100 uninterrupted steps must be
// bitwise identical to 50 steps + checkpoint + restore-into-a-fresh-
// driver + 50 steps, including the Langevin thermostat's RNG stream.
// The checkpoint lands at step 50, a multiple of rebuild_every=10, so
// the freshly rebuilt neighbor list matches the uninterrupted run's.
TEST(Checkpoint, MdDriverRestartIsBitwiseIdentical) {
  ScopedFile f("test_ft_md.ckpt");
  auto model = test_model();
  auto atoms = test_atoms();
  nnq::MdOptions opt;
  opt.dt = 5.0;
  opt.rebuild_every = 10;
  opt.langevin_kt = 0.004;

  nnq::NnqmdDriver uninterrupted(model, nullptr, atoms, opt);
  for (int s = 0; s < 100; ++s) uninterrupted.step();

  nnq::NnqmdDriver killed(model, nullptr, atoms, opt);
  for (int s = 0; s < 50; ++s) killed.step();
  ft::CheckpointWriter w;
  killed.save_checkpoint(w);
  w.write(f.path);

  nnq::NnqmdDriver restored(model, nullptr, atoms, opt);
  ft::CheckpointReader r(f.path);
  restored.restore_checkpoint(r);
  EXPECT_EQ(restored.steps(), 50);
  for (int s = 0; s < 50; ++s) restored.step();

  ASSERT_EQ(restored.atoms().r.size(), uninterrupted.atoms().r.size());
  EXPECT_EQ(std::memcmp(restored.atoms().r.data(),
                        uninterrupted.atoms().r.data(),
                        restored.atoms().r.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(restored.atoms().v.data(),
                        uninterrupted.atoms().v.data(),
                        restored.atoms().v.size() * sizeof(double)),
            0);
  EXPECT_EQ(restored.total_energy(), uninterrupted.total_energy());
}

TEST(Degradation, MdDriverSwapsToFallbackOnInjectedNanForce) {
  qxmd::LjParams lj;
  lj.rc = 6.5; // <= basis rc + skin: fallback sees every listed pair
  auto model = test_model();
  nnq::MdOptions opt;
  opt.dt = 5.0;
  opt.fallback = &lj;

  ft::ScopedFaults faults("nan_force@step=3");
  nnq::NnqmdDriver driver(model, nullptr, test_atoms(), opt);
  EXPECT_FALSE(driver.degraded());
  for (int s = 0; s < 10; ++s) driver.step();
  EXPECT_TRUE(driver.degraded());
  // The baseline pair potential carried the run: trajectory stays finite.
  for (double x : driver.atoms().r) EXPECT_TRUE(std::isfinite(x));
  for (double v : driver.atoms().v) EXPECT_TRUE(std::isfinite(v));
  for (double f : driver.forces()) EXPECT_TRUE(std::isfinite(f));
}

TEST(Degradation, FidelityRunDegradesWhereFailureWouldOccur) {
  nnq::LatticeModel model({12, 12}, 71);
  ferro::FerroParams params;
  nnq::FailureOptions opt;
  opt.max_steps = 150;
  opt.weight_noise = 10.0; // huge mispredictions: trips quickly

  const long t_fail = nnq::time_to_failure(model, 8, 8, params, opt);
  const auto stats = nnq::run_with_degradation(model, 8, 8, params, opt);
  // Same seed, same noise schedule: degradation trips exactly where
  // time_to_failure declares failure — but the run finishes finite.
  if (t_fail < opt.max_steps) {
    EXPECT_EQ(stats.trip_step, t_fail);
    EXPECT_EQ(stats.degraded_steps, opt.max_steps - stats.trip_step);
  } else {
    EXPECT_EQ(stats.trip_step, -1);
  }
  EXPECT_TRUE(stats.finite);
}

// ---------------------------------------------------------------------------
// Pipeline: checkpoint/restore identity + the three recovery policies
// ---------------------------------------------------------------------------

pipeline::PipelineOptions tiny_pipeline() {
  pipeline::PipelineOptions opt;
  opt.lattice = 16;
  opt.superlattice = 1;
  opt.relax_steps = 50;
  opt.xs_steps = 30;
  opt.record_every = 5;
  return opt;
}

TEST(Pipeline, CheckpointRestoreContinuationIsBitwiseIdentical) {
  ScopedFile f("test_ft_pipeline.ckpt");
  auto reference = pipeline::run_pipeline(tiny_pipeline(), /*dark=*/true);

  // "Kill" at step 15: run half the trajectory and checkpoint it.
  auto first_half = tiny_pipeline();
  first_half.xs_steps = 15;
  first_half.checkpoint_every = 15;
  first_half.checkpoint_path = f.path;
  auto res_half = pipeline::run_pipeline(first_half, /*dark=*/true);
  EXPECT_EQ(res_half.checkpoints_written, 1);

  // Restore skips stages 1-2 entirely and resumes the XS loop at 15.
  auto second_half = tiny_pipeline();
  second_half.restore_path = f.path;
  auto res = pipeline::run_pipeline(second_half, /*dark=*/true);
  EXPECT_EQ(res.start_step, 15);
  EXPECT_EQ(res.q_final, reference.q_final);
  ASSERT_EQ(res.q_history.size(), reference.q_history.size());
  for (std::size_t i = 0; i < res.q_history.size(); ++i)
    EXPECT_EQ(res.q_history[i], reference.q_history[i]);
  EXPECT_EQ(res.switched, reference.switched);
}

TEST(Pipeline, AbortPolicyRaisesGuardTripped) {
  ft::ScopedFaults faults("inf_field@step=5");
  auto opt = tiny_pipeline();
  opt.guard.enabled = true;
  opt.guard.policy = ft::Policy::kAbort;
  try {
    pipeline::run_pipeline(opt, /*dark=*/true);
    FAIL() << "expected GuardTripped";
  } catch (const ft::GuardTripped& e) {
    EXPECT_NE(std::string(e.what()).find("step 5"), std::string::npos);
  }
}

TEST(Pipeline, RollbackPolicyReplaysAndCompletes) {
  ft::ScopedFaults faults("inf_field@step=5");
  auto opt = tiny_pipeline();
  opt.guard.enabled = true;
  opt.guard.policy = ft::Policy::kRollback;
  auto res = pipeline::run_pipeline(opt, /*dark=*/true);
  // One rollback to the step-0 snapshot; the fault budget (count=1) is
  // spent on the first firing, so the replay sails through.
  EXPECT_EQ(res.rollbacks, 1);
  for (double q : res.q_history) EXPECT_TRUE(std::isfinite(q));
  EXPECT_TRUE(std::isfinite(res.q_final));
}

TEST(Pipeline, DegradePolicySanitizesExactBackend) {
  ft::ScopedFaults faults("inf_field@step=5");
  auto opt = tiny_pipeline();
  opt.guard.enabled = true;
  opt.guard.policy = ft::Policy::kDegrade;
  auto res = pipeline::run_pipeline(opt, /*dark=*/true);
  // Exact backend: nothing to degrade to, so the injected Inf cells are
  // zeroed and the damped dynamics re-relaxes them.
  EXPECT_FALSE(res.degraded);
  for (double q : res.q_history) EXPECT_TRUE(std::isfinite(q));
  EXPECT_TRUE(std::isfinite(res.q_final));
}

TEST(Pipeline, DegradePolicySwapsNeuralForExactBackend) {
  ft::ScopedFaults faults("nan_force@step=3");
  auto gs = std::make_shared<nnq::LatticeModel>(
      std::vector<std::size_t>{8, 8}, 5);
  auto xs = std::make_shared<nnq::LatticeModel>(
      std::vector<std::size_t>{8, 8}, 6);
  auto opt = tiny_pipeline();
  opt.backend = pipeline::ForceBackend::kNeural;
  opt.gs_model = gs;
  opt.xs_model = xs;
  opt.guard.enabled = true;
  opt.guard.policy = ft::Policy::kDegrade;
  auto res = pipeline::run_pipeline(opt, /*dark=*/true);
  EXPECT_TRUE(res.degraded);
  for (double q : res.q_history) EXPECT_TRUE(std::isfinite(q));
  EXPECT_TRUE(std::isfinite(res.q_final));
}

// ---------------------------------------------------------------------------
// common::Cli unknown-flag rejection
// ---------------------------------------------------------------------------

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "pipeline", "--steps=3", "--stpes=4"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.unknown_keys({"steps"}),
            (std::vector<std::string>{"stpes"}));
  EXPECT_FALSE(cli.check_known({"steps"}, "usage hint"));
}

TEST(Cli, AcceptsKnownFlagsAndIgnoresPositionals) {
  const char* argv[] = {"prog", "pipeline", "--steps=3", "--trace"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.unknown_keys({"steps", "trace"}).empty());
  EXPECT_TRUE(cli.check_known({"steps", "trace"}, ""));
  EXPECT_EQ(cli.integer("steps", 0), 3);
}

} // namespace
