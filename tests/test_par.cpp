// Tests for the SimComm message-passing substrate: collectives, tagged
// point-to-point, traffic metering, error propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mlmd/par/simcomm.hpp"

namespace {

using namespace mlmd::par;

TEST(SimComm, SingleRankRuns) {
  int visited = 0;
  run(1, [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

TEST(SimComm, BarrierSynchronizes) {
  const int nranks = 8;
  std::atomic<int> before{0}, after_ok{0};
  run(nranks, [&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    // After the barrier every rank must see all arrivals.
    if (before.load() == nranks) after_ok.fetch_add(1);
  });
  EXPECT_EQ(after_ok.load(), nranks);
}

TEST(SimComm, RepeatedBarriers) {
  run(4, [&](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(SimComm, Broadcast) {
  run(5, [&](Comm& c) {
    std::vector<int> data;
    if (c.rank() == 2) data = {10, 20, 30};
    c.broadcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[1], 20);
  });
}

TEST(SimComm, GatherOrdersByRank) {
  run(6, [&](Comm& c) {
    auto got = c.gather(c.rank() * 10, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(got.size(), 6u);
      for (int r = 0; r < 6; ++r) EXPECT_EQ(got[static_cast<size_t>(r)], r * 10);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(SimComm, Allgather) {
  run(4, [&](Comm& c) {
    auto got = c.allgather(static_cast<double>(c.rank()));
    ASSERT_EQ(got.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(got[static_cast<size_t>(r)], r);
  });
}

TEST(SimComm, AllgathervVariableSizes) {
  run(3, [&](Comm& c) {
    std::vector<int> mine(static_cast<size_t>(c.rank()) + 1, c.rank());
    auto got = c.allgatherv(std::span<const int>(mine));
    ASSERT_EQ(got.size(), 6u); // 1 + 2 + 3
    EXPECT_EQ(got[0], 0);
    EXPECT_EQ(got[1], 1);
    EXPECT_EQ(got[3], 2);
  });
}

TEST(SimComm, AllreduceSumMinMax) {
  run(7, [&](Comm& c) {
    EXPECT_EQ(c.allreduce(1, ReduceOp::kSum), 7);
    EXPECT_EQ(c.allreduce(c.rank(), ReduceOp::kMin), 0);
    EXPECT_EQ(c.allreduce(c.rank(), ReduceOp::kMax), 6);
  });
}

TEST(SimComm, AllreduceVector) {
  run(4, [&](Comm& c) {
    std::vector<double> v = {1.0, static_cast<double>(c.rank())};
    auto r = c.allreduce(std::span<const double>(v), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(r[0], 4.0);
    EXPECT_DOUBLE_EQ(r[1], 6.0);
  });
}

TEST(SimComm, SendRecvRing) {
  run(5, [&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<int> payload = {c.rank(), c.rank() * 2};
    auto got = c.sendrecv(next, std::span<const int>(payload), prev, 0);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev);
    EXPECT_EQ(got[1], prev * 2);
  });
}

TEST(SimComm, TaggedMessagesKeptSeparate) {
  run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> a = {111}, b = {222};
      c.send(1, /*tag=*/7, std::span<const int>(a));
      c.send(1, /*tag=*/8, std::span<const int>(b));
    } else {
      // Receive in reverse tag order: matching must be by tag, not FIFO.
      auto b = c.recv<int>(0, 8);
      auto a = c.recv<int>(0, 7);
      EXPECT_EQ(a[0], 111);
      EXPECT_EQ(b[0], 222);
    }
  });
}

TEST(SimComm, MessageOrderPreservedPerTag) {
  run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> v = {i};
        c.send(1, 0, std::span<const int>(v));
      }
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv<int>(0, 0)[0], i);
    }
  });
}

TEST(SimComm, TrafficStatsCountBytes) {
  auto stats = run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(100, 1.0);
      c.send(1, 0, std::span<const double>(v));
    } else {
      c.recv<double>(0, 0);
    }
    c.allgather(c.rank());
  });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.p2p_bytes, 800u);
  EXPECT_EQ(stats.collective_ops, 2u); // one allgather per rank
  EXPECT_EQ(stats.collective_bytes, 2u * sizeof(int));
}

TEST(SimComm, ExceptionPropagates) {
  EXPECT_THROW(run(3,
                   [&](Comm& c) {
                     if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                     // Other ranks must not deadlock waiting; they finish.
                   }),
               std::runtime_error);
}

TEST(SimComm, InvalidRankCountThrows) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(SimComm, SendToBadRankThrows) {
  EXPECT_THROW(run(1,
                   [&](Comm& c) {
                     std::vector<int> v = {1};
                     c.send(5, 0, std::span<const int>(v));
                   }),
               std::out_of_range);
}

TEST(SimComm, ManyRanksStress) {
  const int nranks = 32;
  auto stats = run(nranks, [&](Comm& c) {
    for (int i = 0; i < 5; ++i) {
      auto s = c.allreduce(1, ReduceOp::kSum);
      EXPECT_EQ(s, nranks);
      c.barrier();
    }
  });
  EXPECT_GT(stats.collective_ops, 0u);
}

TEST(SimComm, BackToBackCollectivesNoCrosstalk) {
  run(4, [&](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      auto got = c.allgather(c.rank() + round * 100);
      for (int r = 0; r < 4; ++r)
        EXPECT_EQ(got[static_cast<size_t>(r)], r + round * 100);
    }
  });
}

} // namespace
