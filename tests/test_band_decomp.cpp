// Tests for the hybrid band decomposition: distributed orbital-space
// operations over SimComm must reproduce the serial results.

#include <gtest/gtest.h>

#include <complex>

#include "mlmd/common/rng.hpp"
#include "mlmd/la/ortho.hpp"
#include "mlmd/lfd/band_decomp.hpp"
#include "mlmd/lfd/nlp_prop.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::lfd;
using cd = std::complex<double>;

la::Matrix<cd> random_psi(std::size_t ngrid, std::size_t norb, unsigned long long seed) {
  mlmd::Rng rng(seed);
  la::Matrix<cd> psi(ngrid, norb);
  for (std::size_t i = 0; i < psi.size(); ++i)
    psi.data()[i] = cd(rng.normal(), rng.normal());
  return psi;
}

la::Matrix<cd> slice_cols(const la::Matrix<cd>& m, std::size_t c0, std::size_t c1) {
  la::Matrix<cd> s(m.rows(), c1 - c0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = c0; c < c1; ++c) s(r, c - c0) = m(r, c);
  return s;
}

TEST(BandLayout, SplitCoversAllOrbitals) {
  for (int p = 1; p <= 5; ++p) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int r = 0; r < p; ++r) {
      auto [s0, s1] = BandLayout::slice_of(r, p, 10);
      EXPECT_EQ(s0, prev_end);
      EXPECT_GE(s1, s0);
      covered += s1 - s0;
      prev_end = s1;
    }
    EXPECT_EQ(covered, 10u);
  }
}

TEST(BandLayout, NearEqualSlices) {
  auto [a0, a1] = BandLayout::slice_of(0, 3, 10); // 4
  auto [b0, b1] = BandLayout::slice_of(2, 3, 10); // 3
  EXPECT_EQ(a1 - a0, 4u);
  EXPECT_EQ(b1 - b0, 3u);
  (void)b0;
  (void)a0;
}

class BandSweep : public ::testing::TestWithParam<int> {};

TEST_P(BandSweep, DistributedOverlapMatchesSerial) {
  const int nranks = GetParam();
  const std::size_t ngrid = 64, norb = 7;
  const double dv = 0.3;
  auto a = random_psi(ngrid, norb, 1);
  auto b = random_psi(ngrid, norb, 2);

  la::Matrix<cd> serial(norb, norb);
  la::gemm(la::Trans::kC, la::Trans::kN, cd(dv, 0.0), a, b, cd{}, serial);

  par::run(nranks, [&](par::Comm& comm) {
    auto layout = BandLayout::split(comm, norb);
    auto a_slice = slice_cols(a, layout.s0, layout.s1);
    auto b_slice = slice_cols(b, layout.s0, layout.s1);
    auto s = distributed_overlap(comm, layout, a_slice, b_slice, dv);
    EXPECT_LT(la::max_abs_diff(s, serial), 1e-11);
  });
}

TEST_P(BandSweep, DistributedLowdinMatchesSerial) {
  const int nranks = GetParam();
  const std::size_t ngrid = 48, norb = 6;
  const double dv = 0.2;
  auto psi = random_psi(ngrid, norb, 3);

  auto serial = psi;
  la::lowdin_orthonormalize(serial, dv);

  par::run(nranks, [&](par::Comm& comm) {
    auto layout = BandLayout::split(comm, norb);
    auto my = slice_cols(psi, layout.s0, layout.s1);
    distributed_lowdin(comm, layout, my, dv);
    auto expect = slice_cols(serial, layout.s0, layout.s1);
    EXPECT_LT(la::max_abs_diff(my, expect), 1e-9);
  });
}

TEST_P(BandSweep, DistributedNlpPropMatchesSerial) {
  const int nranks = GetParam();
  const grid::Grid3 g{4, 4, 4, 0.6, 0.6, 0.6};
  const std::size_t norb = 6;
  SoAWave<double> serial_wave(g, norb);
  init_plane_waves(serial_wave);
  auto psi0 = serial_wave.psi;
  // Perturb so the correction is nontrivial.
  mlmd::Rng rng(4);
  for (std::size_t i = 0; i < serial_wave.psi.size(); ++i)
    serial_wave.psi.data()[i] += cd(0.01 * rng.normal(), 0.01 * rng.normal());
  auto psi_t = serial_wave.psi;

  const cd delta(0.0, -0.03);
  nlp_prop(serial_wave, psi0, delta);

  par::run(nranks, [&](par::Comm& comm) {
    auto layout = BandLayout::split(comm, norb);
    auto my_psi = slice_cols(psi_t, layout.s0, layout.s1);
    auto my_psi0 = slice_cols(psi0, layout.s0, layout.s1);
    distributed_nlp_prop(comm, layout, g, my_psi, my_psi0, delta);
    auto expect = slice_cols(serial_wave.psi, layout.s0, layout.s1);
    EXPECT_LT(la::max_abs_diff(my_psi, expect), 1e-10);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, BandSweep, ::testing::Values(1, 2, 3, 4));

TEST(BandDecomp, AsyncRingBitIdenticalToSync) {
  // --comm=async posts each ring round's slice transfer before the
  // round's block GEMM (and ring_prefetch can post round 0 even earlier).
  // Transfer order and payloads are unchanged, so the propagated slices
  // must be bit-identical to the synchronous ring, not merely close.
  const grid::Grid3 g{4, 4, 4, 0.6, 0.6, 0.6};
  const std::size_t norb = 6;
  constexpr int kRanks = 3;
  SoAWave<double> wave(g, norb);
  init_plane_waves(wave);
  auto psi0 = wave.psi;
  mlmd::Rng rng(11);
  for (std::size_t i = 0; i < wave.psi.size(); ++i)
    wave.psi.data()[i] += cd(0.01 * rng.normal(), 0.01 * rng.normal());
  auto psi_t = wave.psi;
  const cd delta(0.0, -0.03);

  auto run_mode = [&](par::CommMode mode) {
    const par::CommMode saved = par::default_comm_mode();
    par::set_default_comm_mode(mode);
    std::vector<la::Matrix<cd>> out(kRanks);
    par::run(kRanks, [&](par::Comm& comm) {
      auto layout = BandLayout::split(comm, norb);
      auto my_psi = slice_cols(psi_t, layout.s0, layout.s1);
      auto my_psi0 = slice_cols(psi0, layout.s0, layout.s1);
      auto pre = ring_prefetch(comm, my_psi0);
      distributed_nlp_prop(comm, layout, g, my_psi, my_psi0, delta, &pre);
      out[static_cast<std::size_t>(comm.rank())] = std::move(my_psi);
    });
    par::set_default_comm_mode(saved);
    return out;
  };
  const auto sync = run_mode(par::CommMode::kSync);
  const auto async = run_mode(par::CommMode::kAsync);
  for (int r = 0; r < kRanks; ++r) {
    const auto& a = sync[static_cast<std::size_t>(r)];
    const auto& b = async[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.size(), b.size()) << "rank " << r;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a.data()[i], b.data()[i]) << "rank " << r << " elem " << i;
  }
}

TEST(BandDecomp, RingTrafficScalesWithRanks) {
  const std::size_t ngrid = 32, norb = 8;
  auto psi = random_psi(ngrid, norb, 5);
  auto traffic2 = par::run(2, [&](par::Comm& comm) {
    auto layout = BandLayout::split(comm, norb);
    auto my = slice_cols(psi, layout.s0, layout.s1);
    distributed_overlap(comm, layout, my, my, 0.1);
  });
  auto traffic4 = par::run(4, [&](par::Comm& comm) {
    auto layout = BandLayout::split(comm, norb);
    auto my = slice_cols(psi, layout.s0, layout.s1);
    distributed_overlap(comm, layout, my, my, 0.1);
  });
  // More ranks -> more ring messages.
  EXPECT_GT(traffic4.messages, traffic2.messages);
}

} // namespace
