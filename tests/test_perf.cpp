// Tests for the calibrated machine model: collective cost functions,
// compute-model fitting, and the qualitative scaling shapes the Fig. 4/5
// benches rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "mlmd/perf/machine.hpp"

namespace {

using namespace mlmd::perf;

TEST(Network, SingleRankFree) {
  Network net;
  EXPECT_DOUBLE_EQ(net.allreduce(1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(net.allgather(1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(net.gather(1, 1000), 0.0);
}

TEST(Network, CostsMonotonicInRanksAndBytes) {
  Network net;
  EXPECT_LT(net.allreduce(2, 8), net.allreduce(1024, 8));
  EXPECT_LT(net.allreduce(64, 8), net.allreduce(64, 1 << 20));
  EXPECT_LT(net.gather(64, 8), net.gather(4096, 8));
  EXPECT_LT(net.halo(100), net.halo(1 << 20));
}

TEST(Network, AllgatherRecursiveDoublingFormula) {
  Network net;
  // ceil(log2 p) latency rounds + (p-1) payload blocks through each rank.
  for (long p : {2L, 4L, 64L, 1000L}) {
    const double expect =
        std::ceil(std::log2(static_cast<double>(p))) * net.latency +
        static_cast<double>(p - 1) * 8.0 / net.bandwidth;
    EXPECT_NEAR(net.allgather(p, 8), expect, 1e-15);
  }
}

TEST(ComputeFit, RecoversCoefficients) {
  const double a = 1e-4, b = 1e-7;
  std::vector<double> n, t;
  for (double x : {16.0, 64.0, 256.0, 1024.0}) {
    n.push_back(x);
    t.push_back(a * x + b * x * x);
  }
  auto c = DcMeshCompute::fit(n, t);
  EXPECT_NEAR(c.a, a, 1e-8);
  EXPECT_NEAR(c.b, b, 1e-10);
}

TEST(ComputeFit, ClampsNegative) {
  // Noisy data could give negative coefficients; they must be clamped.
  std::vector<double> n = {1.0, 2.0};
  std::vector<double> t = {1.0, 0.5}; // decreasing: unphysical
  auto c = DcMeshCompute::fit(n, t);
  EXPECT_GE(c.a, 0.0);
  EXPECT_GE(c.b, 0.0);
}

TEST(ComputeFit, TooFewPointsThrows) {
  EXPECT_THROW(DcMeshCompute::fit({1.0}, {1.0}), std::invalid_argument);
}

TEST(DcMeshScaling, WeakEfficiencyNearOneAndBounded) {
  DcMeshCompute comp{1e-5, 1e-8};
  Network net;
  auto pts = dcmesh_weak_scaling(comp, net, {6144, 24576, 120000}, 128);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].efficiency, 1.0);
  for (const auto& p : pts) {
    EXPECT_LE(p.efficiency, 1.0 + 1e-9);
    EXPECT_GT(p.efficiency, 0.5); // weak scaling ~flat (Fig. 4a shape)
  }
}

TEST(DcMeshScaling, WeakTimeNearlyConstant) {
  DcMeshCompute comp{1e-5, 1e-8};
  Network net;
  auto pts = dcmesh_weak_scaling(comp, net, {6144, 120000}, 128);
  EXPECT_LT(pts[1].seconds / pts[0].seconds, 1.5);
}

TEST(DcMeshScaling, StrongEfficiencyDecays) {
  DcMeshCompute comp{1e-5, 1e-8};
  Network net;
  auto pts = dcmesh_strong_scaling(comp, net, {24576, 49152, 98304}, 12582912);
  EXPECT_DOUBLE_EQ(pts[0].efficiency, 1.0);
  EXPECT_LT(pts[2].efficiency, pts[1].efficiency);
  EXPECT_LT(pts[2].efficiency, 1.0);
  EXPECT_GT(pts[2].efficiency, 0.3); // Fig. 4b ballpark (paper: 0.843)
}

TEST(NnqmdScaling, WeakEfficiencyImprovesWithGranularity) {
  NnqmdCompute comp;
  comp.t_atom = 1e-7;
  Network net;
  const std::vector<long> ranks = {7500, 120000};
  const double e_small = nnqmd_weak_scaling(comp, net, ranks, 160000).back().efficiency;
  const double e_large =
      nnqmd_weak_scaling(comp, net, ranks, 10240000).back().efficiency;
  EXPECT_GE(e_large, e_small); // Fig. 5a shape: 0.997 vs 0.957
  EXPECT_GT(e_large, 0.9);
}

TEST(NnqmdScaling, StrongSmallerProblemWorse) {
  NnqmdCompute comp;
  comp.t_atom = 1e-7;
  Network net;
  const std::vector<long> ranks = {9225, 73800};
  const double e_small =
      nnqmd_strong_scaling(comp, net, ranks, 221400000).back().efficiency;
  const double e_large =
      nnqmd_strong_scaling(comp, net, ranks, 984000000).back().efficiency;
  EXPECT_LT(e_small, e_large); // Fig. 5b shape: 0.440 vs 0.773
}

TEST(Aggregate, FlopsRule) {
  // Sec. VII.B: aggregate = per-domain FLOPs x domains / wall time.
  EXPECT_DOUBLE_EQ(aggregate_flops_per_sec(1e12, 120000, 1.705),
                   1e12 * 120000 / 1.705);
}

} // namespace
