// Cross-module integration scenarios that tie physics together end to
// end: Peierls diamagnetic current, delta-kick spectroscopy vs the
// orbital spectrum, NN energy prediction on held-out lattice physics, and
// trajectory plumbing (driver -> XYZ -> reader).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "mlmd/analysis/spectrum.hpp"
#include "mlmd/common/units.hpp"
#include "mlmd/lfd/domain.hpp"
#include "mlmd/nnq/allegro.hpp"
#include "mlmd/nnq/md_driver.hpp"
#include "mlmd/nnq/train.hpp"
#include "mlmd/qxmd/xyz.hpp"

namespace {

using namespace mlmd;

TEST(Integration, PeierlsDiamagneticCurrent) {
  // A stationary state in a constant vector potential carries the
  // diamagnetic current j ~ -rho_bar * A / c (to leading order in A):
  // the Peierls-phased stencil must reproduce it.
  grid::Grid3 g{8, 8, 8, 0.6, 0.6, 0.6};
  lfd::LfdOptions opt;
  opt.init_relax_steps = 40;
  lfd::LfdDomain<double> dom(g, 2, opt);
  dom.initialize({{0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.0, 1.5, 2.0}}, 1);

  const double a_val = 0.5;
  const double a[3] = {0.0, a_val, 0.0};
  const auto j = dom.current(a);
  // Mean density = electrons / volume.
  const double rho_bar = 2.0 / g.volume();
  const double expect = -rho_bar * std::sin(a_val * g.hy / units::c_light) / g.hy;
  // Lattice form: j_dia = -rho sin(A h / c)/h ~ -rho A/c.
  EXPECT_NEAR(j[1], expect, 0.15 * std::abs(expect));
  // No transverse components.
  EXPECT_NEAR(j[0], 0.0, 0.1 * std::abs(expect));
}

TEST(Integration, DeltaKickPeakMatchesOrbitalGap) {
  // The absorption spectrum of a kicked domain peaks at transition
  // energies between occupied and unoccupied adiabatic orbitals.
  grid::Grid3 g{8, 8, 8, 0.7, 0.7, 0.7};
  lfd::LfdOptions opt;
  opt.dt_qd = 0.08;
  opt.nlp_every = 0;
  opt.self_consistent = false; // frozen potential: clean linear response
  opt.init_relax_steps = 60;
  lfd::LfdDomain<double> dom(g, 4, opt);
  dom.initialize({{0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.5, 1.6, 2.0}}, 2);

  const double zero_a[3] = {0, 0, 0};
  auto bands = dom.diagonalize_subspace(zero_a);

  // Kick along y and record the dipole.
  const double kick = 1e-3;
  auto& w = dom.wave();
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z) {
        const std::complex<double> ph(std::cos(kick * y * g.hy),
                                      std::sin(kick * y * g.hy));
        for (std::size_t s = 0; s < 4; ++s) w.at(g.index(x, y, z), s) *= ph;
      }
  std::vector<double> dipole;
  for (int s = 0; s < 1600; ++s) {
    dom.qd_step(zero_a);
    dipole.push_back(dom.dipole()[1]);
  }
  auto spec = analysis::absorption_spectrum(dipole, opt.dt_qd);
  const double peak = analysis::dominant_frequency(spec);

  // The peak must sit near SOME occupied->unoccupied gap (which gap
  // dominates depends on dipole selection weights). Tolerance is set by
  // the spectral resolution: a T = 128 a.u. window with a Hann taper
  // broadens lines by ~2 * 2pi/T ~ 0.1 a.u. (~14% of the peak here).
  double best = 1e9;
  for (int occ = 0; occ < 2; ++occ)
    for (int un = 2; un < 4; ++un)
      best = std::min(best, std::abs(bands[static_cast<std::size_t>(un)] -
                                     bands[static_cast<std::size_t>(occ)] - peak));
  EXPECT_LT(best, 0.25 * peak) << "peak at " << peak;
}

TEST(Integration, TrainedLatticeModelPredictsHeldOutEnergies) {
  // Train/test split of ONE equilibrium trajectory: a different seed
  // equilibrates into a different domain configuration (different feature
  // distribution), which would test extrapolation, not interpolation.
  auto all = nnq::sample_ferro_dataset(8, 8, 0.05, 40, 8, 0.0, 901);
  nnq::Dataset train(all.begin(), all.begin() + 32);
  nnq::Dataset test(all.begin() + 32, all.end());
  nnq::Mlp net({nnq::kLatticeFeatures, 20, 1}, 51);
  nnq::TrainOptions topt;
  topt.epochs = 150;
  nnq::train_energy(net, train, topt);

  // Energy-only training at this budget resolves the absolute per-site
  // energy scale, not the tiny within-trajectory fluctuations (~2% of the
  // scale); assert held-out predictions land within 15% of the scale.
  double mean = 0, ss_res = 0;
  for (const auto& s : test) {
    double pred = 0;
    for (const auto& f : s.features) pred += net.value(f);
    const double ns = static_cast<double>(s.features.size());
    ss_res += std::pow((pred - s.energy) / ns, 2);
    mean += s.energy / ns;
  }
  mean /= static_cast<double>(test.size());
  const double rmse = std::sqrt(ss_res / static_cast<double>(test.size()));
  EXPECT_LT(rmse, 0.15 * std::abs(mean));
}

TEST(Integration, DriverTrajectoryRoundTrip) {
  auto model = nnq::AtomModel(nnq::RadialBasis::make(4, 1.5, 6.0, 1.2), {8}, 3);
  auto atoms = qxmd::make_cubic_lattice(2, 2, 2, 4.5, 200.0);
  qxmd::thermalize(atoms, 0.002, 9);
  nnq::NnqmdDriver driver(model, nullptr, atoms, {});

  const std::string path = ::testing::TempDir() + "drv.xyz";
  std::remove(path.c_str());
  for (int s = 0; s < 5; ++s) {
    driver.step();
    qxmd::append_xyz(driver.atoms(), path, "step");
  }
  auto frames = qxmd::read_xyz(path);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].n(), 8u);
  // Atoms moved between frames.
  EXPECT_NE(frames[0].pos(0)[0], frames[4].pos(0)[0]);
  std::remove(path.c_str());
}

} // namespace
