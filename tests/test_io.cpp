// Checkpoint/restart round-trip tests for wavefunctions, lattices, and
// the device-residency ledger + OMPallocator emulation.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "mlmd/common/device.hpp"
#include "mlmd/ferro/io.hpp"
#include "mlmd/lfd/io.hpp"

namespace {

using namespace mlmd;

std::string tmp_path(const char* name) { return ::testing::TempDir() + name; }

TEST(WaveIo, RoundTripDouble) {
  grid::Grid3 g{6, 4, 8, 0.5, 0.6, 0.7};
  lfd::SoAWave<double> w(g, 3);
  lfd::init_plane_waves(w);
  const auto path = tmp_path("wave_d.bin");
  lfd::save_wave(w, path);
  auto r = lfd::load_wave<double>(path);
  EXPECT_EQ(r.grid.nx, g.nx);
  EXPECT_DOUBLE_EQ(r.grid.hy, g.hy);
  EXPECT_EQ(r.norb, 3u);
  EXPECT_EQ(r.psi, w.psi);
  std::remove(path.c_str());
}

TEST(WaveIo, RoundTripFloat) {
  grid::Grid3 g{4, 4, 4, 0.5, 0.5, 0.5};
  lfd::SoAWave<float> w(g, 2);
  lfd::init_plane_waves(w);
  const auto path = tmp_path("wave_f.bin");
  lfd::save_wave(w, path);
  auto r = lfd::load_wave<float>(path);
  EXPECT_EQ(r.psi, w.psi);
  std::remove(path.c_str());
}

TEST(WaveIo, PrecisionMismatchThrows) {
  grid::Grid3 g{4, 4, 4, 0.5, 0.5, 0.5};
  lfd::SoAWave<float> w(g, 2);
  const auto path = tmp_path("wave_mismatch.bin");
  lfd::save_wave(w, path);
  EXPECT_THROW(lfd::load_wave<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(WaveIo, MissingFileThrows) {
  EXPECT_THROW(lfd::load_wave<double>("/nonexistent/wave.bin"), std::runtime_error);
}

TEST(WaveIo, BadMagicThrows) {
  const auto path = tmp_path("wave_bad.bin");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  std::fputs("not a wavefunction checkpoint at all, padding padding", fp);
  std::fclose(fp);
  EXPECT_THROW(lfd::load_wave<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(LatticeIo, RoundTripIncludingStateAndParams) {
  ferro::FerroParams p;
  p.a0 = -0.7;
  p.d = 0.33;
  ferro::FerroLattice lat(6, 5, p);
  mlmd::Rng rng(9);
  for (auto& u : lat.field()) u = {rng.normal(), rng.normal(), rng.normal()};
  for (auto& v : lat.velocity()) v = {rng.normal(), 0.0, rng.normal()};
  std::vector<double> w(lat.ncells());
  for (auto& x : w) x = rng.uniform();
  lat.set_excitation(w);

  const auto path = tmp_path("lattice.bin");
  ferro::save_lattice(lat, path);
  auto r = ferro::load_lattice(path);
  EXPECT_EQ(r.lx(), 6u);
  EXPECT_EQ(r.ly(), 5u);
  EXPECT_DOUBLE_EQ(r.params().a0, -0.7);
  EXPECT_DOUBLE_EQ(r.params().d, 0.33);
  for (std::size_t i = 0; i < lat.ncells(); ++i) {
    EXPECT_EQ(r.field()[i], lat.field()[i]);
    EXPECT_EQ(r.velocity()[i], lat.velocity()[i]);
    EXPECT_DOUBLE_EQ(r.excitation()[i], lat.excitation()[i]);
  }
  // Restart determinism: both lattices step identically.
  lat.step();
  r.step();
  EXPECT_EQ(r.field()[3], lat.field()[3]);
  std::remove(path.c_str());
}

TEST(LatticeIo, MissingFileThrows) {
  EXPECT_THROW(ferro::load_lattice("/nonexistent/lat.bin"), std::runtime_error);
}

// --- device-residency emulation (paper Sec. V.B.6) -----------------------

TEST(DeviceLedger, MapUnmapAccounting) {
  auto& led = DeviceLedger::instance();
  led.reset_counters();
  const auto before = led.stats().resident_bytes;
  int dummy = 0;
  led.enter_data(&dummy, 1000);
  EXPECT_TRUE(led.is_mapped(&dummy));
  EXPECT_EQ(led.stats().resident_bytes, before + 1000);
  led.update_to_device(&dummy, 400);
  led.update_to_host(&dummy, 100);
  auto s = led.stats();
  EXPECT_EQ(s.h2d_bytes, 400u);
  EXPECT_EQ(s.d2h_bytes, 100u);
  EXPECT_EQ(s.h2d_transfers, 1u);
  led.exit_data(&dummy);
  EXPECT_FALSE(led.is_mapped(&dummy));
  EXPECT_EQ(led.stats().resident_bytes, before);
}

TEST(DeviceLedger, UpdateUnmappedThrows) {
  int dummy = 0;
  EXPECT_THROW(DeviceLedger::instance().update_to_device(&dummy, 8),
               std::logic_error);
}

TEST(OmpAllocator, VectorLifetimeMapsAndUnmaps) {
  auto& led = DeviceLedger::instance();
  const auto before = led.stats().resident_bytes;
  {
    std::vector<double, OMPAllocator<double>> v(1024);
    EXPECT_TRUE(led.is_mapped(v.data()));
    EXPECT_EQ(led.stats().resident_bytes, before + 1024 * sizeof(double));
    // GPU-resident working arrays can be updated explicitly, as the
    // shadow-dynamics exchange does for delta_f.
    led.update_to_host(v.data(), 64);
  }
  EXPECT_EQ(led.stats().resident_bytes, before);
}

TEST(OmpAllocator, ShadowResidencyStory) {
  // The wavefunction array stays resident; only occupation-sized updates
  // move. Assert the byte ratio the paper's design relies on.
  auto& led = DeviceLedger::instance();
  led.reset_counters();
  std::vector<std::complex<float>, OMPAllocator<std::complex<float>>> psi(
      16 * 16 * 16 * 64);
  std::vector<double> delta_f(64);
  led.update_to_host(psi.data(), delta_f.size() * sizeof(double)); // delta_f out
  auto s = led.stats();
  EXPECT_GT(s.peak_resident, 1000 * (s.h2d_bytes + s.d2h_bytes));
}

} // namespace
