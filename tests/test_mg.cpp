// Tests for the geometric multigrid Poisson solver, including the
// GSLF/GSLD cross-check against the spectral solver.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "mlmd/common/rng.hpp"
#include "mlmd/fft/fft.hpp"
#include "mlmd/mg/multigrid.hpp"

namespace {

using namespace mlmd::mg;

std::vector<double> sine_rho(std::size_t n, double l) {
  std::vector<double> rho(n * n * n);
  for (std::size_t x = 0; x < n; ++x) {
    const double c = std::cos(2.0 * std::numbers::pi * static_cast<double>(x) / n);
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t z = 0; z < n; ++z) rho[(x * n + y) * n + z] = c;
  }
  (void)l;
  return rho;
}

TEST(Multigrid, BuildsCoarseHierarchy) {
  Multigrid mg(32, 32, 32, 0.5, 0.5, 0.5);
  EXPECT_GE(mg.levels(), 3);
}

TEST(Multigrid, SolvesToTolerance) {
  const std::size_t n = 32;
  const double h = 10.0 / n;
  MgOptions opt;
  opt.tol = 1e-8;
  Multigrid mg(n, n, n, h, h, h, opt);
  auto rho = sine_rho(n, 10.0);
  for (auto& v : rho) v *= 4.0 * std::numbers::pi;
  std::vector<double> phi;
  auto res = mg.solve(rho, phi);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.rel_residual, 1e-8);
  EXPECT_LT(res.vcycles, 25);
}

TEST(Multigrid, VcycleContractionRate) {
  const std::size_t n = 32;
  const double h = 0.3;
  Multigrid mg(n, n, n, h, h, h);
  mlmd::Rng rng(11);
  std::vector<double> f(n * n * n);
  double mean = 0;
  for (auto& v : f) {
    v = rng.normal();
    mean += v;
  }
  mean /= static_cast<double>(f.size());
  for (auto& v : f) v -= mean;

  std::vector<double> phi(f.size(), 0.0);
  double prev = mg.residual_norm(phi, f);
  for (int c = 0; c < 4; ++c) {
    mg.vcycle(phi, f);
    const double now = mg.residual_norm(phi, f);
    // Textbook multigrid contracts the residual by ~10x per V-cycle;
    // require at least 3x to catch smoothing/transfer bugs.
    EXPECT_LT(now, prev / 3.0) << "cycle " << c;
    prev = now;
  }
}

TEST(Multigrid, MatchesSpectralSolver) {
  // GSLF pair consistency: sparse multigrid and dense FFT must agree.
  const std::size_t n = 16;
  const double L = 8.0, h = L / n;
  mlmd::Rng rng(13);
  std::vector<double> rho(n * n * n);
  for (auto& v : rho) v = rng.normal();

  std::vector<double> phi_fft;
  mlmd::fft::poisson_periodic(rho, phi_fft, n, n, n, L, L, L);

  MgOptions opt;
  opt.tol = 1e-10;
  opt.max_vcycles = 200;
  Multigrid mg(n, n, n, h, h, h, opt);
  std::vector<double> f(rho.size());
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = 4.0 * std::numbers::pi * rho[i];
  std::vector<double> phi_mg;
  auto res = mg.solve(f, phi_mg);
  ASSERT_TRUE(res.converged);

  // Same operator up to discretization: the FFT solves the continuum
  // Laplacian, the MG the 7-point stencil. Compare against the stencil's
  // own residual instead of pointwise: apply -lap to phi_fft and check it
  // reproduces f up to O(h^2) truncation; then check MG solution is close
  // to FFT solution within that truncation scale.
  double diff = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < phi_mg.size(); ++i) {
    diff += (phi_mg[i] - phi_fft[i]) * (phi_mg[i] - phi_fft[i]);
    scale += phi_fft[i] * phi_fft[i];
  }
  EXPECT_LT(std::sqrt(diff / (scale + 1e-300)), 0.25);
}

TEST(Multigrid, SolutionIsZeroMean) {
  const std::size_t n = 16;
  Multigrid mg(n, n, n, 0.4, 0.4, 0.4);
  mlmd::Rng rng(15);
  std::vector<double> f(n * n * n);
  for (auto& v : f) v = rng.normal() + 5.0; // deliberately non-neutral
  std::vector<double> phi;
  mg.solve(f, phi);
  double mean = 0;
  for (double v : phi) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(phi.size()), 0.0, 1e-9);
}

TEST(Multigrid, AnisotropicSpacings) {
  const std::size_t n = 16;
  MgOptions opt;
  opt.max_vcycles = 120;
  opt.tol = 1e-7;
  Multigrid mg(n, n, n, 0.2, 0.4, 0.8, opt);
  auto rho = sine_rho(n, 0.2 * n);
  std::vector<double> phi;
  auto res = mg.solve(rho, phi);
  EXPECT_TRUE(res.converged);
}

TEST(Multigrid, NonPow2EvenGridWorks) {
  // 24 = 2^3 * 3: coarsens 24 -> 12 -> 6, stops (6/2 < min_dim).
  Multigrid mg(24, 24, 24, 0.5, 0.5, 0.5);
  EXPECT_GE(mg.levels(), 2);
  auto rho = sine_rho(24, 12.0);
  std::vector<double> phi;
  auto res = mg.solve(rho, phi);
  EXPECT_TRUE(res.converged);
}

TEST(Multigrid, WarmStartConvergesFaster) {
  const std::size_t n = 16;
  Multigrid mg(n, n, n, 0.5, 0.5, 0.5);
  auto rho = sine_rho(n, 8.0);
  std::vector<double> phi_cold;
  auto cold = mg.solve(rho, phi_cold);
  // Re-solve from the converged solution with a slightly perturbed rhs.
  auto rho2 = rho;
  for (auto& v : rho2) v *= 1.01;
  std::vector<double> phi_warm = phi_cold;
  auto warm = mg.solve(rho2, phi_warm);
  EXPECT_LE(warm.vcycles, cold.vcycles);
}

TEST(Multigrid, TooSmallGridThrows) {
  EXPECT_THROW(Multigrid(1, 4, 4, 1, 1, 1), std::invalid_argument);
}

TEST(Multigrid, WrongSizeRhsThrows) {
  Multigrid mg(8, 8, 8, 1, 1, 1);
  std::vector<double> f(10), phi;
  EXPECT_THROW(mg.solve(f, phi), std::invalid_argument);
}

} // namespace
