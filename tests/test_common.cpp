// Unit tests for the common substrate: BF16 softfloat, RNG, FLOP
// counters, timers, CLI parsing, aligned allocation, units.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "mlmd/common/aligned.hpp"
#include "mlmd/common/bf16.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/common/rng.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/common/units.hpp"

namespace {

using mlmd::bf16;

TEST(Bf16, ExactValuesRoundTrip) {
  // Values with <= 7 mantissa bits are representable exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 1024.0f, 0.0078125f}) {
    EXPECT_EQ(bf16(v).to_float(), v) << v;
  }
}

TEST(Bf16, RelativeErrorBounded) {
  // BF16 has 8 mantissa bits (incl. implicit): rel err <= 2^-8.
  mlmd::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1e6, 1e6));
    if (v == 0.0f) continue;
    const float r = bf16(v).to_float();
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 256.0f) << v;
  }
}

TEST(Bf16, RoundToNearestEven) {
  // 1.0 + 2^-8 is exactly halfway between 1.0 and 1.0 + 2^-7; RNE keeps
  // the even (lower) mantissa.
  const float halfway = 1.0f + 1.0f / 256.0f;
  EXPECT_EQ(bf16(halfway).to_float(), 1.0f);
  // Just above halfway rounds up.
  EXPECT_EQ(bf16(std::nextafter(halfway, 2.0f)).to_float(), 1.0f + 1.0f / 128.0f);
}

TEST(Bf16, SpecialValues) {
  EXPECT_TRUE(std::isinf(bf16(std::numeric_limits<float>::infinity()).to_float()));
  EXPECT_TRUE(std::isnan(bf16(std::numeric_limits<float>::quiet_NaN()).to_float()));
  EXPECT_EQ(bf16(-0.0f).bits(), 0x8000u);
}

TEST(Bf16, SplitImprovesAccuracy) {
  mlmd::Rng rng(2);
  double err1 = 0, err2 = 0, err3 = 0;
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(rng.normal());
    bf16 parts[3];
    mlmd::bf16_split(v, parts, 1);
    err1 += std::abs(mlmd::bf16_join(parts, 1) - v);
    mlmd::bf16_split(v, parts, 2);
    err2 += std::abs(mlmd::bf16_join(parts, 2) - v);
    mlmd::bf16_split(v, parts, 3);
    err3 += std::abs(mlmd::bf16_join(parts, 3) - v);
  }
  EXPECT_LT(err2, err1 * 0.1);
  EXPECT_LE(err3, err2);
}

TEST(Bf16, SplitX3NearExact) {
  mlmd::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    bf16 parts[3];
    mlmd::bf16_split(v, parts, 3);
    const float r = mlmd::bf16_join(parts, 3);
    // x3 covers 21+ mantissa bits: comparable to FP32.
    EXPECT_NEAR(r, v, std::abs(v) * 3e-6f + 1e-30f);
  }
}

TEST(Rng, Deterministic) {
  mlmd::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  mlmd::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformMomentsAndRange) {
  mlmd::Rng rng(7);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 0.01);
}

TEST(Rng, NormalMoments) {
  mlmd::Rng rng(8);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitStreamsIndependent) {
  mlmd::Rng base(9);
  auto s1 = base.split(1);
  auto s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s1() == s2()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, IndexInRange) {
  mlmd::Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Flops, CountsAndScopes) {
  mlmd::flops::reset();
  mlmd::flops::add(100);
  mlmd::flops::Scope scope;
  mlmd::flops::add(50);
  EXPECT_EQ(scope.flops(), 50u);
  EXPECT_EQ(mlmd::flops::total(), 150u);
}

TEST(Flops, ThreadSafety) {
  mlmd::flops::reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 10000; ++i) mlmd::flops::add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mlmd::flops::total(), 40000u);
}

TEST(Flops, AnalyticGemmCounts) {
  EXPECT_EQ(mlmd::flops::gemm_complex(2, 3, 4), 8u * 24u);
  EXPECT_EQ(mlmd::flops::gemm_real(2, 3, 4), 2u * 24u);
}

TEST(Timer, MeasuresElapsed) {
  mlmd::Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(TimerSet, Accumulates) {
  mlmd::TimerSet ts;
  ts.add("kernel", 0.5);
  ts.add("kernel", 0.25);
  EXPECT_DOUBLE_EQ(ts.seconds("kernel"), 0.75);
  EXPECT_EQ(ts.calls("kernel"), 2u);
  EXPECT_DOUBLE_EQ(ts.seconds("missing"), 0.0);
  {
    mlmd::ScopedTimer st(ts, "scoped");
  }
  EXPECT_EQ(ts.calls("scoped"), 1u);
}

TEST(Cli, ParsesTypes) {
  const char* argv[] = {"prog", "--n=42", "--x=2.5", "--flag", "--name=abc",
                        "positional"};
  mlmd::Cli cli(6, argv);
  EXPECT_EQ(cli.integer("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.real("x", 0), 2.5);
  EXPECT_TRUE(cli.flag("flag"));
  EXPECT_EQ(cli.str("name"), "abc");
  EXPECT_EQ(cli.integer("missing", 7), 7);
  EXPECT_FALSE(cli.has("positional"));
}

TEST(Cli, RejectsTrailingGarbageInNumbers) {
  // strtol/strtod stop at the first bad character; the getters must treat
  // a partial parse as an error, not silently truncate --n=8x to 8.
  const char* argv[] = {"prog", "--n=8x", "--x=1e3garbage", "--empty="};
  mlmd::Cli cli(4, argv);
  EXPECT_THROW((void)cli.integer("n", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.real("x", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cli.integer("empty", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.real("empty", 0.0), std::invalid_argument);
  try {
    (void)cli.integer("n", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offending flag and hints at the usage.
    EXPECT_NE(std::string(e.what()).find("--n=8x"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("usage"), std::string::npos);
  }
}

TEST(Cli, AcceptsFullNumericValues) {
  const char* argv[] = {"prog", "--n=-17", "--x=2.5e-3", "--y=inf"};
  mlmd::Cli cli(4, argv);
  EXPECT_EQ(cli.integer("n", 0), -17);
  EXPECT_DOUBLE_EQ(cli.real("x", 0.0), 2.5e-3);
  // strtod accepts "inf"; the whole value parsed, so no throw.
  EXPECT_TRUE(std::isinf(cli.real("y", 0.0)));
}

TEST(Aligned, AllocationAligned) {
  std::vector<double, mlmd::AlignedAllocator<double>> v(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % mlmd::kSimdAlign, 0u);
}

TEST(Units, Conversions) {
  using namespace mlmd::units;
  EXPECT_NEAR(attoseconds(attosecond_per_au), 1.0, 1e-12);
  EXPECT_NEAR(femtoseconds(1.0), 1000.0 / attosecond_per_au, 1e-9);
  EXPECT_NEAR(ev(ev_per_hartree), 1.0, 1e-9);
  EXPECT_NEAR(angstrom(1.0), 1.8897259886, 1e-9);
  EXPECT_NEAR(vector_potential_peak(0.06, 0.06), 1.0, 1e-12);
}

} // namespace
