// Tests for the QXMD substrate: atoms/box, linked-cell neighbor lists,
// the LJ potential, velocity-Verlet integration and thermostats, and the
// surface-hopping occupation updater.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mlmd/common/rng.hpp"
#include "mlmd/qxmd/atoms.hpp"
#include "mlmd/qxmd/neighbor.hpp"
#include "mlmd/qxmd/pair_potential.hpp"
#include "mlmd/qxmd/surface_hopping.hpp"
#include "mlmd/qxmd/verlet.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::qxmd;

TEST(Box, MinimumImage) {
  Box box{10, 10, 10};
  double a[3] = {9.5, 0, 0}, b[3] = {0.5, 0, 0};
  auto d = box.mic(a, b);
  EXPECT_NEAR(d[0], -1.0, 1e-12);
}

TEST(Box, WrapIntoBox) {
  Box box{10, 10, 10};
  double p[3] = {-0.5, 10.5, 25.0};
  box.wrap(p);
  EXPECT_NEAR(p[0], 9.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
  EXPECT_NEAR(p[2], 5.0, 1e-12);
}

TEST(Atoms, LatticeAndTemperature) {
  auto atoms = make_cubic_lattice(4, 4, 4, 3.0, 100.0);
  EXPECT_EQ(atoms.n(), 64u);
  EXPECT_DOUBLE_EQ(atoms.box.lx, 12.0);
  thermalize(atoms, 0.01, 42);
  EXPECT_NEAR(atoms.temperature(), 0.01, 0.003);
  // COM momentum removed.
  double px = 0;
  for (std::size_t i = 0; i < atoms.n(); ++i) px += atoms.mass[i] * atoms.vel(i)[0];
  EXPECT_NEAR(px, 0.0, 1e-9);
}

class NeighborSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NeighborSweep, MatchesBruteForce) {
  const auto [na, rc] = GetParam();
  auto atoms = make_cubic_lattice(static_cast<std::size_t>(na),
                                  static_cast<std::size_t>(na),
                                  static_cast<std::size_t>(na), 3.1, 50.0);
  // jitter positions
  mlmd::Rng rng(7);
  for (auto& x : atoms.r) x += 0.3 * rng.normal();
  for (std::size_t i = 0; i < atoms.n(); ++i) atoms.box.wrap(atoms.pos(i));

  NeighborList nl(atoms, rc);
  const double rc2 = rc * rc;
  for (std::size_t i = 0; i < atoms.n(); ++i) {
    std::vector<std::uint32_t> brute;
    for (std::size_t j = 0; j < atoms.n(); ++j) {
      if (i == j) continue;
      auto d = atoms.box.mic(atoms.pos(i), atoms.pos(j));
      if (d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < rc2)
        brute.push_back(static_cast<std::uint32_t>(j));
    }
    auto got = nl.neighbors(i);
    std::sort(got.begin(), got.end());
    std::sort(brute.begin(), brute.end());
    ASSERT_EQ(got, brute) << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, NeighborSweep,
                         ::testing::Values(std::make_tuple(3, 3.5),
                                           std::make_tuple(4, 3.2),
                                           std::make_tuple(5, 4.0),
                                           std::make_tuple(6, 6.5),
                                           std::make_tuple(4, 12.0)));

TEST(Neighbor, MemoryAccountingNonzero) {
  auto atoms = make_cubic_lattice(4, 4, 4, 3.0, 50.0);
  NeighborList nl(atoms, 5.0);
  EXPECT_GT(nl.pair_count(), 0u);
  EXPECT_GT(nl.memory_bytes(), nl.pair_count() * sizeof(std::uint32_t) / 2);
}

TEST(Lj, ForcesMatchNumericalGradient) {
  auto atoms = make_cubic_lattice(3, 3, 3, 4.2, 50.0);
  mlmd::Rng rng(9);
  for (auto& x : atoms.r) x += 0.2 * rng.normal();
  LjParams p;
  p.rc = 8.0;
  NeighborList nl(atoms, p.rc);
  std::vector<double> f;
  lj_energy_forces(atoms, nl, p, f);

  const double eps = 1e-6;
  for (std::size_t i : {0ul, 5ul, 13ul}) {
    for (int k = 0; k < 3; ++k) {
      Atoms moved = atoms;
      moved.pos(i)[k] += eps;
      NeighborList nlp(moved, p.rc);
      std::vector<double> tmp;
      const double ep = lj_energy_forces(moved, nlp, p, tmp);
      moved.pos(i)[k] -= 2 * eps;
      NeighborList nlm(moved, p.rc);
      const double em = lj_energy_forces(moved, nlm, p, tmp);
      EXPECT_NEAR(f[3 * i + static_cast<std::size_t>(k)], -(ep - em) / (2 * eps),
                  1e-4) << i << "," << k;
    }
  }
}

TEST(Lj, NewtonsThirdLaw) {
  auto atoms = make_cubic_lattice(4, 4, 4, 4.0, 50.0);
  mlmd::Rng rng(10);
  for (auto& x : atoms.r) x += 0.3 * rng.normal();
  LjParams p;
  NeighborList nl(atoms, p.rc);
  std::vector<double> f;
  lj_energy_forces(atoms, nl, p, f);
  double total[3] = {0, 0, 0};
  for (std::size_t i = 0; i < atoms.n(); ++i)
    for (int k = 0; k < 3; ++k) total[k] += f[3 * i + static_cast<std::size_t>(k)];
  for (double t : total) EXPECT_NEAR(t, 0.0, 1e-9);
}

TEST(Verlet, ConservesEnergyMicrocanonical) {
  auto atoms = make_cubic_lattice(4, 4, 4, 4.3, 200.0);
  thermalize(atoms, 0.002, 3);
  LjParams p;
  p.epsilon = 0.005;
  p.sigma = 3.8;
  p.rc = 9.0;
  auto forces_fn = [&](const Atoms& a, std::vector<double>& f) {
    NeighborList nl(a, p.rc);
    return lj_energy_forces(a, nl, p, f);
  };
  VerletOptions opt;
  opt.dt = 10.0;
  VelocityVerlet vv(forces_fn, opt);

  std::vector<double> f0;
  const double e_init = forces_fn(atoms, f0) + atoms.kinetic_energy();
  double epot = 0;
  for (int s = 0; s < 100; ++s) epot = vv.step(atoms);
  const double e_final = epot + atoms.kinetic_energy();
  EXPECT_NEAR(e_final, e_init, 5e-3 * std::abs(e_init) + 1e-5);
}

TEST(Verlet, BerendsenReachesTarget) {
  auto atoms = make_cubic_lattice(4, 4, 4, 4.3, 200.0);
  thermalize(atoms, 0.001, 4);
  LjParams p;
  p.epsilon = 0.002;
  auto forces_fn = [&](const Atoms& a, std::vector<double>& f) {
    NeighborList nl(a, p.rc);
    return lj_energy_forces(a, nl, p, f);
  };
  VerletOptions opt;
  opt.dt = 10.0;
  opt.thermostat = Thermostat::kBerendsen;
  opt.target_kt = 0.004;
  opt.tau = 200.0;
  VelocityVerlet vv(forces_fn, opt);
  for (int s = 0; s < 200; ++s) vv.step(atoms);
  EXPECT_NEAR(atoms.temperature(), opt.target_kt, 0.4 * opt.target_kt);
}

TEST(Verlet, LangevinSamplesTargetTemperature) {
  auto atoms = make_cubic_lattice(4, 4, 4, 4.3, 200.0);
  LjParams p;
  p.epsilon = 0.002;
  auto forces_fn = [&](const Atoms& a, std::vector<double>& f) {
    NeighborList nl(a, p.rc);
    return lj_energy_forces(a, nl, p, f);
  };
  VerletOptions opt;
  opt.dt = 10.0;
  opt.thermostat = Thermostat::kLangevin;
  opt.target_kt = 0.003;
  opt.gamma = 5e-3;
  VelocityVerlet vv(forces_fn, opt);
  double t_avg = 0;
  int count = 0;
  for (int s = 0; s < 400; ++s) {
    vv.step(atoms);
    if (s >= 100) {
      t_avg += atoms.temperature();
      ++count;
    }
  }
  EXPECT_NEAR(t_avg / count, opt.target_kt, 0.3 * opt.target_kt);
}

// --- surface hopping --------------------------------------------------------

la::Matrix<std::complex<double>> two_level(double gap, double coupling) {
  la::Matrix<std::complex<double>> h(2, 2);
  h(0, 0) = -0.5 * gap;
  h(1, 1) = 0.5 * gap;
  h(0, 1) = coupling;
  h(1, 0) = coupling;
  return h;
}

TEST(SurfaceHopping, FirstCallOnlyPrimes) {
  SurfaceHopping sh;
  std::vector<double> f = {2.0, 0.0};
  sh.step(two_level(0.2, 0.0), f, 40.0);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
}

TEST(SurfaceHopping, ConservesTotalOccupation) {
  ShOptions opt;
  opt.kt = 0.05;
  SurfaceHopping sh(opt);
  std::vector<double> f = {2.0, 0.0, 1.0};
  la::Matrix<std::complex<double>> h(3, 3);
  h(0, 0) = -0.1;
  h(1, 1) = 0.0;
  h(2, 2) = 0.1;
  mlmd::Rng rng(5);
  const double total0 = std::accumulate(f.begin(), f.end(), 0.0);
  for (int s = 0; s < 30; ++s) {
    // Slowly rotating coupling drives transitions.
    h(0, 1) = 0.02 * std::sin(0.3 * s);
    h(1, 0) = h(0, 1);
    h(1, 2) = 0.02 * std::cos(0.25 * s);
    h(2, 1) = h(1, 2);
    sh.step(h, f, 40.0);
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), total0, 1e-9);
    for (double v : f) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, opt.f_max + 1e-12);
    }
  }
}

TEST(SurfaceHopping, StaticHamiltonianNoTransitions) {
  SurfaceHopping sh;
  std::vector<double> f = {2.0, 0.0};
  auto h = two_level(0.3, 0.05);
  sh.step(h, f, 40.0);
  const auto f_before = f;
  // Identical Hamiltonian -> identity overlap -> no rotation between
  // adiabatic states -> occupations unchanged.
  sh.step(h, f, 40.0);
  EXPECT_NEAR(f[0], f_before[0], 1e-9);
  EXPECT_NEAR(f[1], f_before[1], 1e-9);
}

TEST(SurfaceHopping, DetailedBalanceSuppressesUphill) {
  // Cold electrons: transitions up a large gap are exponentially damped.
  ShOptions cold;
  cold.kt = 1e-4;
  SurfaceHopping sh(cold);
  std::vector<double> f = {2.0, 0.0};
  sh.step(two_level(1.0, 0.0), f, 40.0);
  sh.step(two_level(1.0, 0.3), f, 40.0); // strong sudden coupling
  // Ground state keeps nearly everything.
  EXPECT_GT(f[0], 1.8);
}

TEST(SurfaceHopping, DeterministicMasterEquationRepeatable) {
  auto run_once = [] {
    SurfaceHopping sh;
    std::vector<double> f = {2.0, 0.0};
    for (int s = 0; s < 10; ++s) {
      auto h = two_level(0.2, 0.05 * std::sin(0.4 * s));
      sh.step(h, f, 40.0);
    }
    return f;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

TEST(SurfaceHopping, StochasticModeConserves) {
  ShOptions opt;
  opt.stochastic = true;
  opt.seed = 12345;
  SurfaceHopping sh(opt);
  std::vector<double> f = {2.0, 0.0, 0.5};
  la::Matrix<std::complex<double>> h(3, 3);
  h(0, 0) = -0.1;
  h(1, 1) = 0.05;
  h(2, 2) = 0.2;
  const double total0 = 2.5;
  for (int s = 0; s < 20; ++s) {
    h(0, 1) = 0.05 * std::sin(0.7 * s);
    h(1, 0) = h(0, 1);
    sh.step(h, f, 40.0);
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), total0, 1e-9);
  }
}

TEST(SurfaceHopping, EnergiesSortedAscending) {
  SurfaceHopping sh;
  std::vector<double> f = {1.0, 1.0};
  sh.step(two_level(0.4, 0.1), f, 40.0);
  const auto& e = sh.energies();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_LT(e[0], e[1]);
}

} // namespace
