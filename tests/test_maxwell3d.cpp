// Tests for the 3D Yee FDTD solver: CFL guard, divergence-free B,
// light-speed plane-wave propagation, vacuum energy conservation,
// current-driven radiation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mlmd/common/units.hpp"
#include "mlmd/maxwell/maxwell3d.hpp"

namespace {

using namespace mlmd::maxwell;
using mlmd::units::c_light;

TEST(Maxwell3D, CflViolationThrows) {
  EXPECT_THROW(Maxwell3D(8, 8, 8, 1.0, 1.0), std::invalid_argument);
}

TEST(Maxwell3D, TooSmallThrows) {
  EXPECT_THROW(Maxwell3D(1, 8, 8, 10.0, 1e-3), std::invalid_argument);
}

TEST(Maxwell3D, VacuumStaysDark) {
  Maxwell3D em(8, 8, 8, 10.0, 0.02);
  for (int i = 0; i < 50; ++i) em.step();
  EXPECT_DOUBLE_EQ(em.energy(), 0.0);
}

TEST(Maxwell3D, DivBStaysZero) {
  const double dx = 10.0;
  const double dt = 0.5 * dx / (c_light * std::sqrt(3.0));
  Maxwell3D em(16, 8, 8, dx, dt);
  em.seed_plane_wave(2, 0.05);
  for (int i = 0; i < 100; ++i) em.step();
  EXPECT_LT(em.max_div_b(), 1e-12);
}

TEST(Maxwell3D, VacuumEnergyConserved) {
  const double dx = 10.0;
  const double dt = 0.4 * dx / (c_light * std::sqrt(3.0));
  Maxwell3D em(16, 8, 8, dx, dt);
  em.seed_plane_wave(1, 0.03);
  const double e0 = em.energy();
  ASSERT_GT(e0, 0.0);
  for (int i = 0; i < 200; ++i) em.step();
  // Leapfrog conserves a discrete energy; the sampled-time energy
  // oscillates within a narrow band.
  EXPECT_NEAR(em.energy(), e0, 0.05 * e0);
}

TEST(Maxwell3D, PlaneWaveTravelsAtLightSpeed) {
  const std::size_t nx = 32;
  const double dx = 10.0;
  const double dt = 0.4 * dx / (c_light * std::sqrt(3.0));
  Maxwell3D em(nx, 4, 4, dx, dt);
  em.seed_plane_wave(1, 0.05);
  const double e_before = em.e(1, 0, 0, 0);

  // After one full period T = L / c the wave returns to its start.
  const double period = static_cast<double>(nx) * dx / c_light;
  const int steps = static_cast<int>(std::round(period / dt));
  for (int i = 0; i < steps; ++i) em.step();
  EXPECT_NEAR(em.e(1, 0, 0, 0), e_before, 0.15 * std::abs(e_before) + 1e-4);
}

TEST(Maxwell3D, CurrentRadiates) {
  const double dx = 10.0;
  const double dt = 0.4 * dx / (c_light * std::sqrt(3.0));
  Maxwell3D em(12, 12, 12, dx, dt);
  std::vector<double> j(3 * em.ncells(), 0.0);
  const std::size_t center = (6 * 12 + 6) * 12 + 6;
  for (int i = 0; i < 40; ++i) {
    j[em.ncells() + center] = 1e-3 * std::sin(0.4 * i); // J_y at the centre
    em.step(j);
  }
  EXPECT_GT(em.energy(), 0.0);
  EXPECT_LT(em.max_div_b(), 1e-12);
}

TEST(Maxwell3D, WrongCurrentSizeThrows) {
  Maxwell3D em(8, 8, 8, 10.0, 0.02);
  std::vector<double> j(10, 0.0);
  EXPECT_THROW(em.step(j), std::invalid_argument);
}

} // namespace
