// SimComm concurrency stress tests: repeated mixed empty/non-empty
// collectives (the deposited-flag regression), exception-in-one-rank
// unwind (the poison/abort path that used to hang join()), and eager
// validation of point-to-point rank arguments.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "mlmd/par/simcomm.hpp"

namespace {

using namespace mlmd::par;

struct RankFailure {
  int rank;
};

TEST(SimCommStress, RepeatedMixedEmptyAndNonEmptyCollectives) {
  // Broadcasts interleave zero-byte contributions (every non-root rank)
  // with data-carrying ones; with the old contrib_[rank].empty() entry
  // signal a zero-byte depositor was indistinguishable from a free slot.
  const int nranks = 8;
  run(nranks, [&](Comm& c) {
    for (int round = 0; round < 60; ++round) {
      const int root = round % c.size();
      std::vector<int> data;
      if (c.rank() == root) data = {round, root, 42};
      c.broadcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], round);
      EXPECT_EQ(data[1], root);

      // Immediately chase with a gather (non-roots get empty results but
      // all ranks contribute bytes), then an allgather.
      auto gathered = c.gather(c.rank() + round, root);
      if (c.rank() == root) {
        ASSERT_EQ(gathered.size(), static_cast<std::size_t>(nranks));
        for (int r = 0; r < nranks; ++r)
          EXPECT_EQ(gathered[static_cast<std::size_t>(r)], r + round);
      } else {
        EXPECT_TRUE(gathered.empty());
      }
      auto all = c.allgather(c.rank());
      ASSERT_EQ(all.size(), static_cast<std::size_t>(nranks));
    }
  });
}

TEST(SimCommStress, AllEmptyBroadcastStorm) {
  // Every rank (including the root) contributes zero bytes, back to back:
  // the pure worst case for the deposited-slot bookkeeping.
  run(6, [&](Comm& c) {
    for (int round = 0; round < 100; ++round) {
      std::vector<double> data; // empty at root too
      c.broadcast(data, round % c.size());
      EXPECT_TRUE(data.empty());
    }
  });
}

TEST(SimCommStress, ExceptionWhilePeersWaitInBarrier) {
  EXPECT_THROW(run(4,
                   [&](Comm& c) {
                     if (c.rank() == 2) throw RankFailure{2};
                     // Peers head straight into a barrier that rank 2
                     // will never reach; the poison must unwind them.
                     c.barrier();
                     c.barrier();
                   }),
               RankFailure);
}

TEST(SimCommStress, ExceptionWhilePeersWaitInCollective) {
  EXPECT_THROW(run(5,
                   [&](Comm& c) {
                     for (int round = 0;; ++round) {
                       if (c.rank() == 0 && round == 10)
                         throw std::logic_error("rank 0 gave up");
                       c.allreduce(c.rank() + round, ReduceOp::kSum);
                     }
                   }),
               std::logic_error);
}

TEST(SimCommStress, ExceptionWhilePeerWaitsInRecv) {
  EXPECT_THROW(run(2,
                   [&](Comm& c) {
                     if (c.rank() == 0) throw std::runtime_error("sender died");
                     c.recv<int>(0, 7); // message that will never arrive
                   }),
               std::runtime_error);
}

TEST(SimCommStress, OriginalErrorWinsOverInducedAborts) {
  try {
    run(6, [&](Comm& c) {
      if (c.rank() == 3) throw std::runtime_error("root cause");
      c.barrier();
    });
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error& e) {
    // Victim ranks unwind with "SimComm aborted: ..." but the first
    // recorded error — the root cause — is what run() rethrows.
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(SimCommStress, GroupStateUsableAcrossManyAbortedRuns) {
  // Each run() builds fresh state; repeated aborts must neither hang nor
  // leak blocked threads.
  for (int i = 0; i < 20; ++i) {
    EXPECT_THROW(run(3,
                     [&](Comm& c) {
                       if (c.rank() == i % 3) throw RankFailure{c.rank()};
                       c.barrier();
                     }),
                 RankFailure);
  }
}

TEST(SimCommStress, RecvFromBadRankThrowsUpFront) {
  // An out-of-range source used to block forever; now it throws eagerly
  // (mirroring send's dst validation) and unwinds the peer via poison.
  EXPECT_THROW(run(2,
                   [&](Comm& c) {
                     if (c.rank() == 0) {
                       c.recv<int>(5, 0);
                     } else {
                       c.barrier(); // would hang without the poison
                     }
                   }),
               std::out_of_range);
  EXPECT_THROW(run(1, [&](Comm& c) { c.recv<int>(-1, 0); }), std::out_of_range);
}

TEST(SimCommStress, SelfSendAndSelfRecvRejected) {
  EXPECT_THROW(run(2,
                   [&](Comm& c) {
                     if (c.rank() == 0) {
                       std::vector<int> v = {1};
                       c.send(0, 0, std::span<const int>(v));
                     }
                   }),
               std::invalid_argument);
  EXPECT_THROW(run(2,
                   [&](Comm& c) {
                     if (c.rank() == 1) c.recv<int>(1, 0);
                   }),
               std::invalid_argument);
}

TEST(SimCommStress, MixedTrafficManyRanks) {
  // Collectives interleaved with a ring of tagged messages across enough
  // ranks to force heavy contention on the shared state.
  const int nranks = 16;
  auto stats = run(nranks, [&](Comm& c) {
    for (int round = 0; round < 10; ++round) {
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      std::vector<int> payload = {c.rank(), round};
      auto got = c.sendrecv(next, std::span<const int>(payload), prev, round);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], prev);
      EXPECT_EQ(got[1], round);

      std::vector<int> bc;
      if (c.rank() == round % c.size()) bc = {round};
      c.broadcast(bc, round % c.size());
      ASSERT_EQ(bc.size(), 1u);
      EXPECT_EQ(bc[0], round);

      EXPECT_EQ(c.allreduce(1, ReduceOp::kSum), nranks);
    }
  });
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(nranks) * 10);
}

} // namespace
