// Tests for the LFD module: unitarity and correctness of the kin_prop
// ladder, vloc phases, GEMMified nonlocal correction, observables, the
// DSA Hartree updater, and the LfdDomain shadow-dynamics contract.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <string>
#include <tuple>

#include "mlmd/la/matrix.hpp"
#include "mlmd/lfd/density.hpp"
#include "mlmd/lfd/domain.hpp"
#include "mlmd/lfd/dsa.hpp"
#include "mlmd/lfd/hamiltonian.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/lfd/nlp_prop.hpp"
#include "mlmd/lfd/vloc.hpp"
#include "mlmd/lfd/wavefunction.hpp"
#include "mlmd/simd/simd.hpp"
#include "simd_targets.hpp"

namespace {

using namespace mlmd;
using namespace mlmd::lfd;

grid::Grid3 small_grid() { return {8, 8, 8, 0.6, 0.6, 0.6}; }

double max_norm_deviation(const SoAWave<double>& w) {
  auto n = w.norms2();
  double dev = 0;
  for (double v : n) dev = std::max(dev, std::abs(v - 1.0));
  return dev;
}

TEST(Wavefunction, PlaneWavesAreOrthonormal) {
  SoAWave<double> w(small_grid(), 6);
  init_plane_waves(w);
  auto n = w.norms2();
  for (double v : n) EXPECT_NEAR(v, 1.0, 1e-9);
  // Distinct plane waves orthogonal.
  std::complex<double> overlap{};
  for (std::size_t g = 0; g < w.grid.size(); ++g)
    overlap += std::conj(w.at(g, 0)) * w.at(g, 1);
  EXPECT_NEAR(std::abs(overlap) * w.grid.dv(), 0.0, 1e-9);
}

TEST(Wavefunction, GaussianPacketNormalized) {
  SoAWave<double> w(small_grid(), 1);
  set_gaussian_packet(w, 0, 0.5, 0.5, 0.5, 1.0, 0.5, 0.0, 0.0);
  EXPECT_NEAR(w.norms2()[0], 1.0, 1e-9);
}

TEST(Wavefunction, LayoutRoundTrip) {
  SoAWave<float> w(small_grid(), 3);
  init_plane_waves(w);
  auto back = to_soa(to_aos(w));
  EXPECT_EQ(back.psi, w.psi);
}

TEST(Wavefunction, PrecisionConversion) {
  SoAWave<double> w(small_grid(), 2);
  init_plane_waves(w);
  auto f = convert<float>(w);
  auto d2 = convert<double>(f);
  for (std::size_t i = 0; i < w.psi.size(); ++i)
    EXPECT_NEAR(std::abs(d2.psi.data()[i] - w.psi.data()[i]), 0.0, 1e-6);
}

// --- kin_prop ---------------------------------------------------------------
//
// Each variant runs under every simd dispatch target (unsupported ISAs
// skip), so the rotate/phase stencil kernels are validated per ISA, not
// just for whichever target the host resolves by default.

class KinVariantSweep
    : public ::testing::TestWithParam<std::tuple<KinVariant, mlmd::simd::Target>> {
protected:
  void SetUp() override {
    prev_ = mlmd::simd::active_target();
    const auto t = std::get<1>(GetParam());
    if (!mlmd::simd::target_supported(t))
      GTEST_SKIP() << "simd target '" << mlmd::simd::target_name(t)
                   << "' not supported on this host/build";
    mlmd::simd::set_target(t);
  }
  void TearDown() override { mlmd::simd::set_target(prev_); }
  KinVariant variant() const { return std::get<0>(GetParam()); }

private:
  mlmd::simd::Target prev_ = mlmd::simd::Target::kScalar;
};

TEST_P(KinVariantSweep, ExactlyUnitary) {
  SoAWave<double> w(small_grid(), 4);
  init_plane_waves(w);
  KinParams p;
  p.dt = 0.05;
  p.a[0] = 0.3; // vector potential on: Peierls phases exercised
  for (int i = 0; i < 20; ++i) kin_prop(w, p, variant());
  EXPECT_LT(max_norm_deviation(w), 1e-10);
}

TEST_P(KinVariantSweep, AgreesWithBaseline) {
  SoAWave<double> w_ref(small_grid(), 5), w(small_grid(), 5);
  init_plane_waves(w_ref);
  w.psi = w_ref.psi;
  KinParams p;
  p.dt = 0.03;
  p.a[1] = 0.2;
  kin_prop(w_ref, p, KinVariant::kBaseline);
  kin_prop(w, p, variant());
  EXPECT_LT(la::max_abs_diff(w.psi, w_ref.psi), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, KinVariantSweep,
    ::testing::Combine(::testing::Values(KinVariant::kReordered,
                                         KinVariant::kBlocked,
                                         KinVariant::kParallel),
                       ::testing::ValuesIn(mlmd::testing::kAllSimdTargets)),
    [](const auto& info) {
      return "variant" + std::to_string(info.index) + "_" +
             mlmd::simd::target_name(std::get<1>(info.param));
    });

TEST(KinProp, OddGridThrows) {
  grid::Grid3 g{7, 8, 8, 0.5, 0.5, 0.5};
  SoAWave<double> w(g, 1);
  KinParams p;
  p.dt = 0.05;
  EXPECT_THROW(kin_prop(w, p), std::invalid_argument);
}

TEST(KinProp, ConstantOrbitalGetsOnlyDiagonalPhase) {
  // The k=0 plane wave is an eigenstate of the hopping terms with
  // eigenvalue 2t per axis; total kinetic eigenvalue is 0 (diag + 2t = 0).
  SoAWave<double> w(small_grid(), 1);
  const double amp = 1.0 / std::sqrt(w.grid.volume());
  for (std::size_t g = 0; g < w.grid.size(); ++g) w.at(g, 0) = amp;
  KinParams p;
  p.dt = 0.1;
  kin_prop(w, p, KinVariant::kReordered);
  // E(k=0) = 0 exactly on the lattice: state unchanged.
  for (std::size_t g = 0; g < w.grid.size(); ++g) {
    EXPECT_NEAR(w.at(g, 0).real(), amp, 1e-12);
    EXPECT_NEAR(w.at(g, 0).imag(), 0.0, 1e-12);
  }
}

TEST(KinProp, PlaneWavePhaseMatchesLatticeDispersion) {
  // A kx = 2pi/L plane wave is an exact eigenstate of the Trotterized
  // kinetic operator when the split terms commute on it; accumulate many
  // small steps and compare the phase with the lattice dispersion
  // E(k) = (1 - cos(k h)) / h^2.
  grid::Grid3 g{16, 4, 4, 0.5, 0.8, 0.8};
  SoAWave<double> w(g, 2);
  init_plane_waves(w);
  // orbital 1 has k = (0, 0, ...) ordering from shells; build explicitly:
  const double k = 2.0 * std::numbers::pi / g.lx();
  const double amp = 1.0 / std::sqrt(g.volume());
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z)
        w.at(g.index(x, y, z), 0) =
            amp * std::complex<double>(std::cos(k * x * g.hx),
                                       std::sin(k * x * g.hx));
  const std::complex<double> before = w.at(g.index(3, 0, 0), 0);

  KinParams p;
  p.dt = 0.002;
  const int steps = 100;
  for (int i = 0; i < steps; ++i) kin_prop(w, p, KinVariant::kReordered);

  const double e_lattice = (1.0 - std::cos(k * g.hx)) / (g.hx * g.hx);
  const std::complex<double> expect =
      before * std::exp(std::complex<double>(0.0, -e_lattice * p.dt * steps));
  // Tolerance dominated by the O(dt^2) Trotter splitting error.
  EXPECT_NEAR(std::abs(w.at(g.index(3, 0, 0), 0) - expect), 0.0, 5e-4);
}

TEST(KinProp, KineticEnergyMatchesLatticeDispersion) {
  grid::Grid3 g{16, 4, 4, 0.5, 0.8, 0.8};
  SoAWave<double> w(g, 1);
  const double k = 2.0 * std::numbers::pi / g.lx();
  const double amp = 1.0 / std::sqrt(g.volume());
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z)
        w.at(g.index(x, y, z), 0) =
            amp * std::complex<double>(std::cos(k * x * g.hx),
                                       std::sin(k * x * g.hx));
  const double zero_a[3] = {0, 0, 0};
  const double e = kinetic_energy(w, 0, zero_a);
  EXPECT_NEAR(e, (1.0 - std::cos(k * g.hx)) / (g.hx * g.hx), 1e-9);
}

TEST(KinProp, FloatVariantTracksDouble) {
  SoAWave<double> wd(small_grid(), 3);
  init_plane_waves(wd);
  auto wf = convert<float>(wd);
  KinParams p;
  p.dt = 0.05;
  for (int i = 0; i < 10; ++i) {
    kin_prop(wd, p, KinVariant::kParallel);
    kin_prop(wf, p, KinVariant::kParallel);
  }
  double dev = 0;
  for (std::size_t i = 0; i < wd.psi.size(); ++i)
    dev = std::max(dev, std::abs(std::complex<double>(wf.psi.data()[i]) -
                                 wd.psi.data()[i]));
  EXPECT_LT(dev, 1e-4);
}

// --- vloc -------------------------------------------------------------------

class VlocTargets : public mlmd::testing::SimdTargetTest {};

TEST_P(VlocTargets, PhaseIsExactlyUnitary) {
  SoAWave<double> w(small_grid(), 3);
  init_plane_waves(w);
  std::vector<double> v(w.grid.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::sin(0.37 * i);
  vloc_prop(w, v, 0.2);
  EXPECT_LT(max_norm_deviation(w), 1e-12);
}

TEST_P(VlocTargets, ConstantPotentialGlobalPhase) {
  SoAWave<double> w(small_grid(), 1);
  init_plane_waves(w);
  auto before = w.psi;
  std::vector<double> v(w.grid.size(), 2.0);
  const double dt = 0.1;
  vloc_prop(w, v, dt);
  const std::complex<double> ph(std::cos(-dt * 2.0), std::sin(-dt * 2.0));
  for (std::size_t i = 0; i < w.psi.size(); ++i)
    EXPECT_NEAR(std::abs(w.psi.data()[i] - ph * before.data()[i]), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Targets, VlocTargets,
                         ::testing::ValuesIn(mlmd::testing::kAllSimdTargets),
                         mlmd::testing::SimdTargetName{});

TEST(Vloc, IonicPotentialAttractiveAndPeriodic) {
  auto g = small_grid();
  std::vector<Ion> ions = {{0.0, 0.0, 0.0, 3.0, 1.0, 2.0}};
  auto v = ionic_potential(g, ions);
  // Minimum at the ion; equal at periodic images (0,0,0) wrapping.
  EXPECT_NEAR(v[g.index(0, 0, 0)], -3.0, 1e-9);
  EXPECT_LT(v[g.index(0, 0, 0)], v[g.index(4, 4, 4)]);
  // Symmetry across the boundary: +1 and -1 (wrapped) equidistant.
  EXPECT_NEAR(v[g.index(1, 0, 0)], v[g.index(7, 0, 0)], 1e-12);
}

TEST(Vloc, XcPotentialNegativeAndMonotonic) {
  std::vector<double> rho = {0.0, 0.1, 1.0, 8.0};
  std::vector<double> v(4, 0.0);
  add_xc_potential(rho, v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_LT(v[3], v[2]);
  EXPECT_LT(v[2], v[1]);
  // Slater exchange: v(8)/v(1) = 2.
  EXPECT_NEAR(v[3] / v[2], 2.0, 1e-12);
}

TEST(Vloc, IonForcePullsTowardDensity) {
  auto g = small_grid();
  // Density blob left of the ion: force should point toward the blob (-x).
  std::vector<double> rho(g.size(), 0.0);
  rho[g.index(2, 4, 4)] = 1.0;
  Ion ion{4 * g.hx, 4 * g.hy, 4 * g.hz, 2.0, 1.5, 2.0};
  auto f = ion_force(g, rho, ion);
  EXPECT_LT(f[0], 0.0);
  EXPECT_NEAR(f[1], 0.0, 1e-12);
  EXPECT_NEAR(f[2], 0.0, 1e-12);
}

TEST(Vloc, IonForceMatchesEnergyGradient) {
  auto g = small_grid();
  std::vector<double> rho(g.size());
  for (std::size_t i = 0; i < rho.size(); ++i) rho[i] = 0.01 * ((i * 37) % 11);
  Ion ion{2.1, 2.3, 2.7, 1.5, 1.2, 2.0};
  auto f = ion_force(g, rho, ion);
  // E(R) = sum rho * V_ion(R) dv; central difference in x.
  const double eps = 1e-5;
  auto energy_at = [&](double x) {
    Ion moved = ion;
    moved.x = x;
    auto v = ionic_potential(g, {moved});
    double e = 0;
    for (std::size_t i = 0; i < v.size(); ++i) e += rho[i] * v[i];
    return e * g.dv();
  };
  const double dEdx = (energy_at(ion.x + eps) - energy_at(ion.x - eps)) / (2 * eps);
  EXPECT_NEAR(f[0], -dEdx, 1e-6);
}

// --- observables ------------------------------------------------------------

TEST(Density, IntegratesToElectronCount) {
  SoAWave<double> w(small_grid(), 4);
  init_plane_waves(w);
  std::vector<double> f = {2.0, 2.0, 1.0, 0.0};
  auto rho = density(w, f);
  double total = 0;
  for (double v : rho) total += v;
  EXPECT_NEAR(total * w.grid.dv(), 5.0, 1e-9);
}

TEST(Density, NonNegative) {
  SoAWave<double> w(small_grid(), 2);
  init_plane_waves(w);
  std::vector<double> f = {2.0, 2.0};
  for (double v : density(w, f)) EXPECT_GE(v, 0.0);
}

TEST(Current, ZeroForRealWavefunction) {
  SoAWave<double> w(small_grid(), 1);
  set_gaussian_packet(w, 0, 0.5, 0.5, 0.5, 1.0, 0.0, 0.0, 0.0);
  std::vector<double> f = {2.0};
  const double a[3] = {0, 0, 0};
  auto j = macroscopic_current(w, f, a);
  EXPECT_NEAR(j[0], 0.0, 1e-10);
  EXPECT_NEAR(j[1], 0.0, 1e-10);
  EXPECT_NEAR(j[2], 0.0, 1e-10);
}

TEST(Current, PlaneWaveCarriesCurrent) {
  grid::Grid3 g{16, 4, 4, 0.5, 0.8, 0.8};
  SoAWave<double> w(g, 1);
  const double k = 2.0 * std::numbers::pi / g.lx();
  const double amp = 1.0 / std::sqrt(g.volume());
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z)
        w.at(g.index(x, y, z), 0) =
            amp * std::complex<double>(std::cos(k * x * g.hx),
                                       std::sin(k * x * g.hx));
  std::vector<double> f = {1.0};
  const double a[3] = {0, 0, 0};
  auto j = macroscopic_current(w, f, a);
  // j = k_lattice / V with lattice velocity sin(kh)/h.
  EXPECT_NEAR(j[0], std::sin(k * g.hx) / g.hx / g.volume(), 1e-9);
}

TEST(Excitation, CountsPromotions) {
  std::vector<double> f0 = {2.0, 2.0, 0.0, 0.0};
  std::vector<double> f = {1.5, 1.9, 0.4, 0.2};
  EXPECT_NEAR(excitation_number(f0, f), 0.6, 1e-12);
}

// --- nlp_prop ---------------------------------------------------------------

TEST(NlpProp, PreservesNorms) {
  SoAWave<float> w(small_grid(), 4);
  init_plane_waves(w);
  auto psi0 = w.psi;
  for (int i = 0; i < 5; ++i)
    nlp_prop(w, psi0, std::complex<double>(0.0, -0.05));
  auto n = w.norms2();
  for (double v : n) EXPECT_NEAR(v, 1.0, 1e-5);
}

TEST(NlpProp, ZeroDeltaIsIdentityUpToRenorm) {
  SoAWave<float> w(small_grid(), 3);
  init_plane_waves(w);
  auto before = w.psi;
  nlp_prop(w, before, std::complex<double>(0.0, 0.0));
  EXPECT_LT(la::max_abs_diff(w.psi, before), 1e-5);
}

TEST(NlpProp, Bf16ModeCloseToNative) {
  SoAWave<float> wa(small_grid(), 4), wb(small_grid(), 4);
  init_plane_waves(wa);
  wb.psi = wa.psi;
  auto psi0 = wa.psi;
  nlp_prop(wa, psi0, std::complex<double>(0.0, -0.05), la::ComputeMode::kNative);
  nlp_prop(wb, psi0, std::complex<double>(0.0, -0.05), la::ComputeMode::kBF16);
  // Perturbative correction: BF16 error stays far below the correction.
  EXPECT_LT(la::max_abs_diff(wa.psi, wb.psi), 2e-3);
}

TEST(NlpProp, DoubleRejectsBf16) {
  SoAWave<double> w(small_grid(), 2);
  init_plane_waves(w);
  auto psi0 = w.psi;
  EXPECT_THROW(nlp_prop(w, psi0, std::complex<double>(0, -0.01),
                        la::ComputeMode::kBF16),
               std::invalid_argument);
}

TEST(Projectors, NormalizedAndApplied) {
  auto g = small_grid();
  auto proj = gaussian_projectors<double>(g, {{0.5, 0.5, 0.5}}, 1.0, 0.3);
  double n2 = 0;
  for (std::size_t i = 0; i < g.size(); ++i) n2 += std::norm(proj.beta(i, 0));
  EXPECT_NEAR(n2 * g.dv(), 1.0, 1e-9);

  SoAWave<double> w(g, 3);
  init_plane_waves(w);
  apply_projectors(w, proj, 0.05);
  auto n = w.norms2();
  for (double v : n) EXPECT_NEAR(v, 1.0, 1e-9);
}

// --- hamiltonian ------------------------------------------------------------

TEST(Hamiltonian, OrbitalMatrixHermitian) {
  SoAWave<double> w(small_grid(), 4);
  init_plane_waves(w);
  std::vector<double> v(w.grid.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.1 * std::cos(0.2 * i);
  const double a[3] = {0.1, 0.0, 0.2};
  auto h = orbital_hamiltonian(w, v, a);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(std::abs(h(i, j) - std::conj(h(j, i))), 0.0, 1e-9);
}

TEST(Hamiltonian, TotalEnergyMatchesParts) {
  SoAWave<double> w(small_grid(), 2);
  init_plane_waves(w);
  std::vector<double> v(w.grid.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.05 * ((i * 13) % 7);
  std::vector<double> f = {2.0, 1.0};
  const double a[3] = {0, 0, 0};
  const double e = total_energy(w, f, v, a);
  double expect = potential_energy(w, f, v);
  for (std::size_t s = 0; s < 2; ++s) expect += f[s] * kinetic_energy(w, s, a);
  EXPECT_NEAR(e, expect, 1e-8);
}

// --- DSA Hartree ------------------------------------------------------------

TEST(Dsa, SolveReachesSmallResidual) {
  auto g = small_grid();
  DsaHartree dsa(g);
  std::vector<double> rho(g.size());
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z)
        rho[g.index(x, y, z)] =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(x) / g.nx);
  dsa.solve(rho);
  EXPECT_LT(dsa.relative_residual(rho), 1e-6);
}

TEST(Dsa, UpdateTracksSlowDensityDrift) {
  auto g = small_grid();
  DsaHartree dsa(g);
  std::vector<double> rho(g.size());
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z)
        rho[g.index(x, y, z)] =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(x) / g.nx);
  dsa.solve(rho);
  // Drift the density slowly; the cheap updater must keep the residual
  // bounded well below the re-solve threshold.
  for (int step = 0; step < 50; ++step) {
    for (auto& v : rho) v *= 1.001;
    dsa.update(rho);
  }
  EXPECT_LT(dsa.relative_residual(rho), 0.3);
}

TEST(Dsa, EnergyPositiveForNonTrivialDensity) {
  auto g = small_grid();
  DsaHartree dsa(g);
  std::vector<double> rho(g.size(), 0.0);
  rho[g.index(4, 4, 4)] = 1.0;
  dsa.solve(rho);
  EXPECT_GT(dsa.energy(rho), 0.0);
}

// --- LfdDomain --------------------------------------------------------------

TEST(LfdDomain, InitializeSetsOccupationsAndNorms) {
  LfdOptions opt;
  LfdDomain<double> dom(small_grid(), 4, opt);
  dom.initialize({{2.4, 2.4, 2.4, 2.0, 1.5, 2.0}}, 2);
  const auto& f = dom.occupations();
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_LT(max_norm_deviation(dom.wave()), 1e-8);
  EXPECT_NEAR(dom.n_exc(), 0.0, 1e-10);
}

TEST(LfdDomain, PropagationConservesNormAndRoughlyEnergy) {
  LfdOptions opt;
  opt.dt_qd = 0.02;
  opt.hartree_every = 0; // static potential: energy must be conserved
  opt.nlp_every = 0;
  opt.self_consistent = false;
  LfdDomain<double> dom(small_grid(), 4, opt);
  dom.initialize({{2.4, 2.4, 2.4, 2.0, 1.5, 2.0}}, 2);
  const double a[3] = {0, 0, 0};
  const double e0 = dom.energy(a);
  dom.run_qd(100, a);
  EXPECT_LT(max_norm_deviation(dom.wave()), 1e-9);
  // Unitary Trotter propagation: the measured energy oscillates within an
  // O(dt^2 ||[T,V]||) band around e0 but must not drift.
  EXPECT_NEAR(dom.energy(a), e0, 3e-2 * std::abs(e0) + 1e-3);
}

TEST(LfdDomain, ShadowExchangeContractSizes) {
  LfdOptions opt;
  LfdDomain<float> dom(small_grid(), 8, opt);
  dom.initialize({{2.4, 2.4, 2.4, 2.0, 1.5, 2.0}}, 4);
  // delta_f is N_orb doubles; wavefunction footprint is N_grid * N_orb
  // complex floats: the shadow payload must be >= N_grid/2 times smaller.
  auto df = dom.take_delta_occupations();
  const std::size_t shadow_bytes = df.size() * sizeof(double);
  const std::size_t psi_bytes = dom.wave().psi.size() * sizeof(std::complex<float>);
  EXPECT_GE(psi_bytes / shadow_bytes, dom.grid().size() / 2);
}

TEST(LfdDomain, DeltaVlocShiftsPotential) {
  LfdOptions opt;
  opt.self_consistent = false;
  LfdDomain<double> dom(small_grid(), 2, opt);
  dom.initialize({{2.4, 2.4, 2.4, 2.0, 1.5, 2.0}}, 1);
  const double v_before = dom.vloc()[0];
  std::vector<double> dv(dom.grid().size(), 0.25);
  dom.apply_delta_vloc(dv);
  EXPECT_NEAR(dom.vloc()[0], v_before + 0.25, 1e-12);
}

TEST(LfdDomain, VectorPotentialPumpsEnergy) {
  LfdOptions opt;
  opt.dt_qd = 0.05;
  opt.self_consistent = false;
  opt.nlp_every = 0;
  LfdDomain<double> dom(small_grid(), 4, opt);
  dom.initialize({{2.4, 2.4, 2.4, 2.5, 1.5, 2.0}}, 2);
  const double zero[3] = {0, 0, 0};
  const double e0 = dom.energy(zero);
  // Oscillating A drives the system (simple monochromatic pump).
  for (int s = 0; s < 150; ++s) {
    double a[3] = {0.0, 0.8 * std::sin(0.3 * s * opt.dt_qd), 0.0};
    dom.qd_step(a);
  }
  EXPECT_GT(dom.energy(zero), e0 - 1e-9);
}

} // namespace
