#pragma once
// Shared gtest plumbing for sweeping a test body over every mlmd::simd
// dispatch target (DESIGN.md Sec. 12). Tests instantiate over ALL targets
// and skip-with-note the ones this host/build cannot run, so the ctest
// log always shows which ISAs were actually exercised.

#include <gtest/gtest.h>

#include <string>

#include "mlmd/simd/simd.hpp"

namespace mlmd::testing {

inline constexpr simd::Target kAllSimdTargets[] = {
    simd::Target::kScalar, simd::Target::kAvx2, simd::Target::kAvx512};

/// Param-name generator: "scalar" / "avx2" / "avx512".
struct SimdTargetName {
  template <class ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return simd::target_name(info.param);
  }
};

/// Fixture base: activates the param target for the test body (skipping
/// when the host or build lacks it) and restores the previous target on
/// teardown so test order cannot leak a narrow ISA into later suites.
class SimdTargetTest : public ::testing::TestWithParam<simd::Target> {
protected:
  void SetUp() override {
    prev_ = simd::active_target();
    if (!simd::target_supported(GetParam()))
      GTEST_SKIP() << "simd target '" << simd::target_name(GetParam())
                   << "' not supported on this host/build";
    simd::set_target(GetParam());
  }
  void TearDown() override { simd::set_target(prev_); }

private:
  simd::Target prev_ = simd::Target::kScalar;
};

/// RAII target switch for tests that iterate supported_targets() inline.
class ScopedSimdTarget {
public:
  explicit ScopedSimdTarget(simd::Target t) : prev_(simd::active_target()) {
    simd::set_target(t);
  }
  ~ScopedSimdTarget() { simd::set_target(prev_); }
  ScopedSimdTarget(const ScopedSimdTarget&) = delete;
  ScopedSimdTarget& operator=(const ScopedSimdTarget&) = delete;

private:
  simd::Target prev_;
};

} // namespace mlmd::testing
