// Fig. 3 reproduction (the science result): light-induced switching of a
// ferroelectric skyrmion superlattice via the full MLMD pipeline, with a
// dark control. Prints Q(t) series for the pumped and dark runs and the
// switching verdict.

#include <cstdio>

#include "mlmd/common/cli.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/mlmd/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);

  pipeline::PipelineOptions opt;
  opt.lattice = static_cast<std::size_t>(cli.integer("lattice", 36));
  opt.superlattice = static_cast<std::size_t>(cli.integer("sk", 3));
  opt.xs_steps = static_cast<int>(cli.integer("xs_steps", 300));
  opt.pulse.e0 = cli.real("e0", 0.08);
  opt.n_sat = cli.real("n_sat", 0.5);

  Timer t;
  auto lit = pipeline::run_pipeline(opt, false);
  auto dark = pipeline::run_pipeline(opt, true);

  std::printf("# Fig 3: skyrmion-superlattice photo-switching "
              "(%zux%zu lattice, %zu^2 skyrmions), %.1f s wall\n",
              opt.lattice, opt.lattice, opt.superlattice, t.seconds());
  std::printf("# DC-MESH handoff: n_exc = %.4f -> Eq.(4) weight w = %.3f\n",
              lit.n_exc, lit.w);
  std::printf("%-8s %-12s %-12s\n", "frame", "Q_pumped", "Q_dark");
  for (std::size_t i = 0;
       i < std::min(lit.q_history.size(), dark.q_history.size()); ++i)
    std::printf("%-8zu %-12.4f %-12.4f\n", i, lit.q_history[i],
                dark.q_history[i]);
  std::printf("# Q: %.2f -> %.2f (pumped) | %.2f -> %.2f (dark)\n",
              lit.q_initial, lit.q_final, dark.q_initial, dark.q_final);
  std::printf("# switching: %s; dark control stable: %s\n",
              lit.switched ? "YES" : "NO", !dark.switched ? "YES" : "NO");
  return 0;
}
