// BF16 precision ablation (paper Sec. VI.C and [34]): accuracy of the
// float_to_BF16 / BF16x2 / BF16x3 compute modes on the nonlocal-
// correction CGEMM, versus FP32. Shows the accuracy ladder the oneMKL
// compute modes implement, here with our software BF16 split.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "mlmd/common/rng.hpp"
#include "mlmd/la/gemm.hpp"
#include "mlmd/simd/simd.hpp"

namespace {

/// When the host has AVX512-BF16, cross-check the hardware vdpbf16ps
/// reduction against the software emulation mlmd::simd uses everywhere
/// else: the emulation replicates the instruction's lane semantics
/// (odd-element-first chained adds, FP32-exact products, DAZ/FTZ), so the
/// two paths must agree bit for bit.
void bf16_dot_hw_vs_emulation() {
  using namespace mlmd;
  if (!simd::caps().avx512bf16) {
    std::printf("# vdpbf16ps cross-check: host lacks avx512_bf16, "
                "emulation only\n");
    return;
  }
  Rng rng(77);
  const std::size_t n = 4096; // bf16 pairs per stream; n % 32 == 0
  std::vector<std::uint16_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Truncate random normals to bf16 (top half of the f32 pattern).
    union { float f; std::uint32_t u; } pa, pb;
    pa.f = static_cast<float>(rng.normal());
    pb.f = static_cast<float>(rng.normal());
    a[i] = static_cast<std::uint16_t>(pa.u >> 16);
    b[i] = static_cast<std::uint16_t>(pb.u >> 16);
  }
  const float hw = simd::bf16_dot(n, a.data(), b.data());
  float em_acc[16] = {};
  simd::bf16_dot16_scalar(n, a.data(), b.data(), em_acc);
  float em = 0.0f;
  for (float lane : em_acc) em += lane;
  union { float f; std::uint32_t u; } uh, ue;
  uh.f = hw;
  ue.f = em;
  std::printf("# vdpbf16ps cross-check (n=%zu): hw=%.9g emu=%.9g %s\n", n,
              hw, em, uh.u == ue.u ? "bit-identical" : "MISMATCH");
}

} // namespace

int main() {
  using namespace mlmd::la;
  using cf = std::complex<float>;

  bf16_dot_hw_vs_emulation();

  std::printf("# BF16 compute-mode ablation: CGEMM C = A^H B accuracy vs "
              "FP32\n");
  std::printf("%-10s %-12s %-14s %-14s %-14s\n", "n", "FP32ref", "BF16",
              "BF16x2", "BF16x3");

  mlmd::Rng rng(55);
  for (std::size_t n : {16, 32, 64, 128, 256}) {
    Matrix<cf> a(n, n), b(n, n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = cf(static_cast<float>(rng.normal()),
                       static_cast<float>(rng.normal()));
      b.data()[i] = cf(static_cast<float>(rng.normal()),
                       static_cast<float>(rng.normal()));
    }
    Matrix<cf> ref(n, n), c(n, n);
    const cf one(1.0f, 0.0f);
    gemm(Trans::kC, Trans::kN, one, a, b, cf{}, ref);
    const double scale = fro_norm(ref) / static_cast<double>(n);

    double errs[3];
    const ComputeMode modes[3] = {ComputeMode::kBF16, ComputeMode::kBF16x2,
                                  ComputeMode::kBF16x3};
    for (int m = 0; m < 3; ++m) {
      gemm_mixed(modes[m], Trans::kC, Trans::kN, one, a, b, cf{}, c);
      errs[m] = max_abs_diff(c, ref) / scale;
    }
    std::printf("%-10zu %-12s %-14.3e %-14.3e %-14.3e\n", n, "0", errs[0],
                errs[1], errs[2]);
  }
  std::printf("# expected shape: each mode ~256x more accurate than the "
              "previous; BF16x3 comparable to FP32 roundoff\n");
  std::printf("# paper: float_to_BF16 is sufficient for the perturbative "
              "nonlocal correction (Sec. V.B.7)\n");
  return 0;
}
