// Fidelity-scaling ablation (paper Sec. V.A.6). Two measurements:
//  (1) time-to-first-force-outlier vs system size under controlled weight
//      noise — reproduces the paper's t_failure ~ N^alpha law (alpha < 0:
//      larger systems sample the outlier tail more often per step). The
//      per-model comparison at one noise point is run-to-run noisy at
//      this scale, so
//  (2) the SAM-vs-plain claim is carried by the loss-surface sharpness —
//      the quantity SAM (Allegro-Legato) explicitly minimizes and the
//      mechanism behind the paper's weaker Legato exponent (-0.14 vs
//      -0.29).

#include <cstdio>
#include <vector>

#include "mlmd/common/cli.hpp"
#include "mlmd/nnq/fidelity.hpp"
#include "mlmd/nnq/md_driver.hpp"
#include "mlmd/nnq/train.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  const int epochs = static_cast<int>(cli.integer("epochs", 30));
  // Weight-noise scale chosen at the failure transition: below ~0.15 no
  // outlier appears within the step budget, above ~0.3 every model fails
  // immediately; 0.2 resolves the SAM-vs-plain gap.
  const double noise = cli.real("noise", 0.25);

  // Train two models on the same GS dataset; only sam_rho differs.
  auto data = nnq::sample_ferro_dataset(10, 10, 0.05, 20, 10, 0.0, 404);
  nnq::LatticeModel plain({24, 24}, 11), legato({24, 24}, 11);
  nnq::TrainOptions topt;
  topt.epochs = epochs;
  nnq::train_energy(plain.net(), data, topt);
  topt.sam_rho = cli.real("sam", 0.08);
  nnq::train_energy(legato.net(), data, topt);

  ferro::FerroParams params;
  nnq::FailureOptions fopt;
  fopt.weight_noise = noise;
  fopt.force_threshold = cli.real("threshold", 6.0);
  fopt.max_steps = static_cast<long>(cli.integer("max_steps", 3000));

  // (1) The robust scaling law: time-to-failure shrinks with system size
  // (more sites sample the force-outlier tail per step). Averaged over
  // seeds; the per-model comparison at a single noise point is noisy, so
  // the SAM-vs-plain claim is carried by the sharpness measurement below.
  const std::vector<std::size_t> sizes = {8, 12, 16, 24, 32};
  std::printf("# fidelity scaling: time-to-failure vs N (weight noise %.3f)\n",
              noise);
  std::printf("%-8s %-10s %-14s %-14s\n", "L", "N", "t_fail(plain)",
              "t_fail(SAM)");

  std::vector<double> ns, t_plain, t_sam;
  for (std::size_t L : sizes) {
    double tp = 0, ts = 0;
    const int nseeds = 5;
    for (int s = 0; s < nseeds; ++s) {
      fopt.seed = 1000 + static_cast<unsigned long long>(s);
      tp += static_cast<double>(nnq::time_to_failure(plain, L, L, params, fopt));
      ts += static_cast<double>(nnq::time_to_failure(legato, L, L, params, fopt));
    }
    tp /= nseeds;
    ts /= nseeds;
    ns.push_back(static_cast<double>(L * L));
    t_plain.push_back(tp);
    t_sam.push_back(ts);
    std::printf("%-8zu %-10zu %-14.1f %-14.1f\n", L, L * L, tp, ts);
  }

  const double a_plain = nnq::powerlaw_exponent(ns, t_plain);
  const double a_sam = nnq::powerlaw_exponent(ns, t_sam);
  std::printf("# exponents: plain %.3f vs SAM %.3f (paper: -0.29 vs -0.14)\n",
              a_plain, a_sam);
  std::printf("# shape check (t_fail decreases with N for the plain model): %s\n",
              a_plain < 0.05 ? "OK" : "MIXED");

  // (2) The quantity SAM certifiably minimizes: worst-case loss increase
  // under a rho-ball weight perturbation (loss-surface sharpness). This
  // is the mechanism behind the paper's weaker Legato exponent.
  const double rho = cli.real("rho", 0.1);
  const double s_plain = nnq::loss_sharpness(plain.net(), data, rho, 32, 5);
  const double s_sam = nnq::loss_sharpness(legato.net(), data, rho, 32, 5);
  std::printf("# loss sharpness at rho=%.2f: plain %.4e vs SAM %.4e (%.2fx "
              "flatter)\n", rho, s_plain, s_sam, s_plain / (s_sam + 1e-300));
  std::printf("# shape check (SAM flattens the loss surface): %s\n",
              s_sam <= s_plain ? "OK" : "MIXED");
  return 0;
}
