// Fig. 5 reproduction: XS-NNQMD weak scaling (a) at 160k / 640k / 10.24M
// atoms per rank and strong scaling (b) for 221.4M and 984M atoms.
//
// The per-atom inference cost is MEASURED from real AtomModel inference on
// this host; the halo/allreduce terms come from the calibrated network
// model. Expected shape: weak efficiencies ~0.957 / 0.964 / 0.997
// (better at larger granularity); strong efficiency 0.773 for the large
// problem but collapsing to ~0.44 for the small one (comm/compute ratio).
//
// A real SimComm mini-run exercises the halo-exchange + energy-allreduce
// pattern over the selected transport (--transport=inproc|shm, DESIGN.md
// Sec. 11); --json=<path> emits one benchjson record per rank whose
// comm_bytes must be identical across transports (trace_check
// --compare-comm). --model=0 skips the analytic sweeps for CI smoke.

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/nnq/allegro.hpp"
#include "mlmd/par/simcomm.hpp"
#include "mlmd/par/transport.hpp"
#include "mlmd/perf/machine.hpp"
#include "mlmd/qxmd/atoms.hpp"
#include "mlmd/qxmd/neighbor.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  if (!cli.check_known(
          {"lattice", "steps", "node_speedup", "model", "ranks", "halo_steps",
           "transport", "comm", "json"},
          "usage: bench_fig5_nnqmd_scaling [--lattice=N] [--steps=N] "
          "[--node_speedup=X] [--model=0|1] [--ranks=N] [--halo_steps=N] "
          "[--transport=inproc|shm] [--comm=sync|async] [--json=path]"))
    return 1;

  std::size_t lat = 12;
  int steps = 3, ranks = 4, halo_steps = 4;
  bool model = true;
  double node_speedup = 1000.0;
  std::string json_path;
  try {
    lat = static_cast<std::size_t>(cli.integer("lattice", 12));
    steps = static_cast<int>(cli.integer("steps", 3));
    ranks = static_cast<int>(cli.integer("ranks", 4));
    halo_steps = static_cast<int>(cli.integer("halo_steps", 4));
    model = cli.flag("model", true);
    node_speedup = cli.real("node_speedup", 1000.0);
    json_path = cli.str("json", "");
    par::set_default_transport(cli.choice("transport", par::kTransportChoices,
                                          par::default_transport()));
    par::set_default_comm_mode(cli.choice("comm", par::kCommModeChoices,
                                          par::default_comm_mode()));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (model) {
    // --- measure per-atom NN inference cost -----------------------------
    auto atoms = qxmd::make_cubic_lattice(lat, lat, lat, 5.0, 2000.0);
    qxmd::NeighborList nl(atoms, 9.0);
    nnq::AtomModel nn(nnq::RadialBasis::make(16, 2.0, 9.0, 1.2), {64, 64, 32});
    std::vector<double> forces;
    Timer t;
    for (int i = 0; i < steps; ++i) nn.energy_forces(atoms, nl, forces, 4096);
    perf::NnqmdCompute comp;
    const double t_atom_host =
        t.seconds() / steps / static_cast<double>(atoms.n());
    // Scaling *shape* is set by the comm/compute ratio at the paper's node
    // speed. A PVC tile runs Allegro inference ~10^3 faster than this one
    // CPU core (the paper's 1.2288e12 atoms / 120,000 ranks finish a step
    // in 1590 s, i.e. ~3.1e-5 s/atom like this host — but with a 690k-weight
    // model ~100x larger than ours). Scale the measured per-atom cost to
    // that node class and keep the calibrated network model.
    comp.t_atom = t_atom_host / node_speedup;
    std::printf("# measured NN inference: %.3e s/atom/step on this core "
                "(%zu atoms, %zu weights); modeled node = %.0fx -> %.3e\n",
                t_atom_host, atoms.n(), nn.n_weights(), node_speedup,
                comp.t_atom);

    perf::Network net;
    const std::vector<long> weak_ranks = {7500, 15000, 30000, 60000, 120000};

    for (long gran : {160000L, 640000L, 10240000L}) {
      std::printf("\n# Fig 5a: weak scaling, %ld atoms/rank\n", gran);
      std::printf("%-10s %-16s %-14s %-12s\n", "ranks", "atoms", "sec/step",
                  "efficiency");
      for (const auto& sp :
           perf::nnqmd_weak_scaling(comp, net, weak_ranks, gran))
        std::printf("%-10ld %-16.3e %-14.3f %-12.4f\n", sp.p,
                    static_cast<double>(sp.p) * static_cast<double>(gran),
                    sp.seconds, sp.efficiency);
    }

    const std::vector<long> strong_ranks = {9225, 18450, 36900, 73800};
    for (long natoms : {221400000L, 984000000L}) {
      std::printf("\n# Fig 5b: strong scaling, %ld atoms\n", natoms);
      std::printf("%-10s %-16s %-14s %-12s\n", "ranks", "atoms/rank",
                  "sec/step", "efficiency");
      for (const auto& sp :
           perf::nnqmd_strong_scaling(comp, net, strong_ranks, natoms))
        std::printf("%-10ld %-16ld %-14.4f %-12.4f\n", sp.p, natoms / sp.p,
                    sp.seconds, sp.efficiency);
    }
    std::printf("\n# paper reference: weak 0.957/0.964/0.997; strong 0.773 "
                "(984M atoms) vs 0.440 (221.4M)\n");

    // Block-inference memory accounting (Sec. V.B.9).
    nn.energy_forces(atoms, nl, forces, /*block_size=*/0);
    const std::size_t full = nn.last_peak_scratch_bytes();
    nn.energy_forces(atoms, nl, forces, /*block_size=*/256);
    const std::size_t blocked = nn.last_peak_scratch_bytes();
    std::printf("# block inference: peak descriptor scratch %zu B -> %zu B "
                "(%.0fx reduction); neighbor-list tensor %zu B\n",
                full, blocked,
                static_cast<double>(full) / static_cast<double>(blocked),
                nl.memory_bytes());
  }

  // --- real SimComm mini-run: halo exchange + energy allreduce ----------
  // The measured counterpart of the modeled comm terms above: each rank
  // exchanges a fixed halo slab with its ring neighbours (sendrecv, the
  // Fig. 5 divide-and-conquer boundary pattern) and joins a global energy
  // allreduce per step. Per-rank accounts ride one final gather, sampled
  // beforehand so they are identical across transports.
  const char* transport = par::transport_name(par::default_transport());
  const char* comm_mode = par::comm_mode_name(par::default_comm_mode());
  const bool overlap = par::default_comm_mode() == par::CommMode::kAsync;
  constexpr std::size_t kHaloDoubles = 512; // fixed slab per exchange
  // packed: calls, bytes, wait bits, overlap bits, posted, completed
  std::vector<std::array<std::uint64_t, 6>> per_rank;
  std::mutex per_rank_mu;
  Timer wall;
  auto traffic = par::run(ranks, [&](par::Comm& comm) {
    const int rank = comm.rank();
    const int n = comm.size();
    const int right = (rank + 1) % n;
    const int left = (rank + n - 1) % n;
    std::vector<double> halo(kHaloDoubles,
                             static_cast<double>(rank) + 0.25);
    std::vector<double> recvd;
    double energy = 1.0 + 0.01 * static_cast<double>(rank);
    // The halo slab is constant across steps, so under --comm=async step
    // s+1's exchange is posted before step s's energy allreduce: the p2p
    // transfer overlaps the collective. Payloads, tags, and arithmetic are
    // identical to the synchronous path, so energies (and comm_bytes) are
    // bit-identical across --comm modes.
    par::CommHandle hs, hr;
    if (overlap && n > 1) {
      hs = comm.isend(right, /*tag=*/0, std::span<const double>(halo));
      hr = comm.irecv(left, /*tag=*/0);
    }
    for (int s = 0; s < halo_steps; ++s) {
      // Ring halo exchange; with n == 1 the ring degenerates to a
      // self-send, so skip the exchange entirely.
      if (n > 1) {
        if (overlap) {
          comm.wait_into(hr, recvd);
          hs.wait();
        } else {
          comm.sendrecv_into(right, std::span<const double>(halo), left,
                             /*tag=*/s, recvd);
        }
        energy += recvd.empty() ? 0.0 : recvd.front() * 1e-3;
        if (overlap && s + 1 < halo_steps) {
          hs = comm.isend(right, s + 1, std::span<const double>(halo));
          hr = comm.irecv(left, s + 1);
        }
      }
      auto e_all = comm.allreduce(energy, par::ReduceOp::kSum);
      energy = 0.5 * (energy + e_all / static_cast<double>(n));
    }
    const par::RankTraffic mine = comm.rank_traffic();
    std::array<std::uint64_t, 6> packed{};
    for (const auto& [op, st] : mine.ops) {
      packed[0] += st.calls;
      packed[1] += st.bytes;
    }
    packed[2] = std::bit_cast<std::uint64_t>(mine.wait_seconds);
    packed[3] = std::bit_cast<std::uint64_t>(mine.overlap_seconds);
    packed[4] = mine.handles_posted;
    packed[5] = mine.handles_completed;
    auto gathered = comm.gather(packed, 0);
    if (rank == 0) {
      std::lock_guard lk(per_rank_mu);
      per_rank = std::move(gathered);
    }
  });
  const double wall_seconds = wall.seconds();
  std::printf("\n# SimComm halo mini-run (%d ranks, %d steps, transport %s, "
              "comm %s): %llu messages, %llu p2p bytes, %llu collective "
              "bytes\n",
              ranks, halo_steps, transport, comm_mode,
              static_cast<unsigned long long>(traffic.messages),
              static_cast<unsigned long long>(traffic.p2p_bytes),
              static_cast<unsigned long long>(traffic.collective_bytes));
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    std::printf("#   rank %zu: %llu comm calls, %llu bytes, %.3e s waiting, "
                "%.3e s overlapped (%llu/%llu handles)\n",
                r, static_cast<unsigned long long>(per_rank[r][0]),
                static_cast<unsigned long long>(per_rank[r][1]),
                std::bit_cast<double>(per_rank[r][2]),
                std::bit_cast<double>(per_rank[r][3]),
                static_cast<unsigned long long>(per_rank[r][5]),
                static_cast<unsigned long long>(per_rank[r][4]));

  if (!json_path.empty()) {
    std::vector<benchjson::Record> recs;
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      benchjson::Record rec;
      rec.kernel = "nnqmd_halo.rank" + std::to_string(r);
      rec.seconds = wall_seconds;
      rec.comm_bytes = per_rank[r][1];
      rec.comm_seconds = std::bit_cast<double>(per_rank[r][2]);
      rec.comm_overlap_seconds = std::bit_cast<double>(per_rank[r][3]);
      rec.handles_posted = per_rank[r][4];
      rec.handles_completed = per_rank[r][5];
      recs.push_back(rec);
    }
    if (!benchjson::write(json_path, recs, nullptr, transport, comm_mode)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s (transport %s, comm %s)\n", json_path.c_str(),
                transport, comm_mode);
  }
  return 0;
}
