// Fig. 5 reproduction: XS-NNQMD weak scaling (a) at 160k / 640k / 10.24M
// atoms per rank and strong scaling (b) for 221.4M and 984M atoms.
//
// The per-atom inference cost is MEASURED from real AtomModel inference on
// this host; the halo/allreduce terms come from the calibrated network
// model. Expected shape: weak efficiencies ~0.957 / 0.964 / 0.997
// (better at larger granularity); strong efficiency 0.773 for the large
// problem but collapsing to ~0.44 for the small one (comm/compute ratio).

#include <cstdio>
#include <vector>

#include "mlmd/common/cli.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/nnq/allegro.hpp"
#include "mlmd/perf/machine.hpp"
#include "mlmd/qxmd/atoms.hpp"
#include "mlmd/qxmd/neighbor.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  const auto lat = static_cast<std::size_t>(cli.integer("lattice", 12));
  const int steps = static_cast<int>(cli.integer("steps", 3));

  // --- measure per-atom NN inference cost -------------------------------
  auto atoms = qxmd::make_cubic_lattice(lat, lat, lat, 5.0, 2000.0);
  qxmd::NeighborList nl(atoms, 9.0);
  nnq::AtomModel model(nnq::RadialBasis::make(16, 2.0, 9.0, 1.2), {64, 64, 32});
  std::vector<double> forces;
  Timer t;
  for (int i = 0; i < steps; ++i) model.energy_forces(atoms, nl, forces, 4096);
  perf::NnqmdCompute comp;
  const double t_atom_host = t.seconds() / steps / static_cast<double>(atoms.n());
  // Scaling *shape* is set by the comm/compute ratio at the paper's node
  // speed. A PVC tile runs Allegro inference ~10^3 faster than this one
  // CPU core (the paper's 1.2288e12 atoms / 120,000 ranks finish a step
  // in 1590 s, i.e. ~3.1e-5 s/atom like this host — but with a 690k-weight
  // model ~100x larger than ours). Scale the measured per-atom cost to
  // that node class and keep the calibrated network model.
  const double node_speedup = cli.real("node_speedup", 1000.0);
  comp.t_atom = t_atom_host / node_speedup;
  std::printf("# measured NN inference: %.3e s/atom/step on this core "
              "(%zu atoms, %zu weights); modeled node = %.0fx -> %.3e\n",
              t_atom_host, atoms.n(), model.n_weights(), node_speedup,
              comp.t_atom);

  perf::Network net;
  const std::vector<long> weak_ranks = {7500, 15000, 30000, 60000, 120000};

  for (long gran : {160000L, 640000L, 10240000L}) {
    std::printf("\n# Fig 5a: weak scaling, %ld atoms/rank\n", gran);
    std::printf("%-10s %-16s %-14s %-12s\n", "ranks", "atoms", "sec/step",
                "efficiency");
    for (const auto& sp : perf::nnqmd_weak_scaling(comp, net, weak_ranks, gran))
      std::printf("%-10ld %-16.3e %-14.3f %-12.4f\n", sp.p,
                  static_cast<double>(sp.p) * static_cast<double>(gran),
                  sp.seconds, sp.efficiency);
  }

  const std::vector<long> strong_ranks = {9225, 18450, 36900, 73800};
  for (long natoms : {221400000L, 984000000L}) {
    std::printf("\n# Fig 5b: strong scaling, %ld atoms\n", natoms);
    std::printf("%-10s %-16s %-14s %-12s\n", "ranks", "atoms/rank", "sec/step",
                "efficiency");
    for (const auto& sp :
         perf::nnqmd_strong_scaling(comp, net, strong_ranks, natoms))
      std::printf("%-10ld %-16ld %-14.4f %-12.4f\n", sp.p, natoms / sp.p,
                  sp.seconds, sp.efficiency);
  }
  std::printf("\n# paper reference: weak 0.957/0.964/0.997; strong 0.773 "
              "(984M atoms) vs 0.440 (221.4M)\n");

  // Block-inference memory accounting (Sec. V.B.9).
  model.energy_forces(atoms, nl, forces, /*block_size=*/0);
  const std::size_t full = model.last_peak_scratch_bytes();
  model.energy_forces(atoms, nl, forces, /*block_size=*/256);
  const std::size_t blocked = model.last_peak_scratch_bytes();
  std::printf("# block inference: peak descriptor scratch %zu B -> %zu B "
              "(%.0fx reduction); neighbor-list tensor %zu B\n",
              full, blocked,
              static_cast<double>(full) / static_cast<double>(blocked),
              nl.memory_bytes());
  return 0;
}
