// Table I reproduction: Maxwell-Ehrenfest time-to-solution ladder.
//
// The paper compares T2S = seconds / (electron * QD step) across Qb@ll,
// PWDFT, SALMON and DC-MESH. The structural claim is that conventional
// (non-divide-and-conquer) real-time TDDFT pays a per-electron cost that
// GROWS with system size (global orthogonalization / dense global
// operations), while DC-MESH's per-electron cost is CONSTANT: the DC
// aggregation rule (Sec. VII.B) makes T2S size-independent by
// construction, so extra electrons are bought with extra domains.
//
// We measure both codes at several electron counts on this host, print
// measured T2S, then extrapolate the measured DC granularity cost to the
// paper's 15.36M-electron / 120,000-rank configuration using the
// calibrated machine model (DESIGN.md substitution: compute measured,
// network modeled).

#include <cstdio>
#include <vector>

#include "mlmd/common/cli.hpp"
#include "mlmd/mesh/baseline.hpp"
#include "mlmd/perf/machine.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.integer("steps", 10));

  std::printf("# Table I: ME-NAQMD time-to-solution [sec/(electron*step)]\n");
  std::printf("%-28s %-11s %-14s %-14s\n", "Code", "electrons", "sec/step",
              "T2S");

  // Conventional global code at growing size: per-electron cost rises.
  struct Cfg {
    std::size_t n, norb;
  };
  const std::vector<Cfg> sizes = {{10, 8}, {12, 16}, {16, 32}, {20, 64}};
  std::vector<double> base_t2s;
  for (const auto& c : sizes) {
    auto r = mesh::run_global_baseline(c.n, c.norb, steps);
    base_t2s.push_back(r.t2s_per_electron);
    std::printf("%-28s %-11zu %-14.4e %-14.4e\n", "Global baseline (non-DC)",
                r.electrons, r.seconds_per_qd_step, r.t2s_per_electron);
  }

  // DC-MESH: one domain measured; total T2S is the same at any domain
  // count because domains add electrons and compute in equal proportion.
  std::vector<double> dc_t2s;
  for (const auto& c : sizes) {
    auto r = mesh::run_dc_domain(c.n, c.norb, steps);
    dc_t2s.push_back(r.t2s_per_electron);
    std::printf("%-28s %-11zu %-14.4e %-14.4e\n", "DC-MESH (per domain)",
                r.electrons, r.seconds_per_qd_step, r.t2s_per_electron);
  }

  const double growth = base_t2s.back() / base_t2s.front();
  const double dc_growth = dc_t2s.back() / dc_t2s.front();
  std::printf("# per-electron cost growth, smallest -> largest system: "
              "baseline %.2fx, DC-MESH %.2fx\n", growth, dc_growth);
  std::printf("# speedup at largest measured size: %.1fx\n",
              base_t2s.back() / dc_t2s.back());

  // Machine-model extrapolation to the paper configuration.
  perf::Network net;
  perf::DcMeshCompute comp;
  {
    std::vector<double> nelec, secs;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      nelec.push_back(2.0 * static_cast<double>(sizes[i].norb));
      secs.push_back(dc_t2s[i] * 2.0 * static_cast<double>(sizes[i].norb));
    }
    comp = perf::DcMeshCompute::fit(nelec, secs);
  }
  const long p_paper = 120000;
  const long n_paper = 15360000;
  const double n_per_rank = static_cast<double>(n_paper) / p_paper;
  const double t_step = comp.seconds(n_per_rank) +
                        net.allgather(p_paper, 8) + net.gather(p_paper, 8);
  std::printf("# model-extrapolated paper config (%ld electrons, %ld ranks): "
              "%.3e sec/step -> T2S %.3e s/electron\n",
              n_paper, p_paper, t_step, t_step / n_paper);
  std::printf("# paper reference: Qb@ll 8.96e-4, PWDFT 8.49e-4, SALMON "
              "1.69e-5, this work 1.11e-7 (152x vs SALMON)\n");
  return 0;
}
