// Descriptor ablation (the accuracy side of the paper's Allegro claim):
// train a radial-only model and a radial+angular (three-body) model on a
// ground truth with genuine three-body physics (LJ pair + Keating angular
// term) and compare held-out energy errors. The angular channels should
// capture what no pair fingerprint can.
//
// Also reports the propagator ablation: wall cost of S2 vs S4 composite
// steps against their accuracy at equal step count.

#include <cmath>
#include <cstdio>

#include "mlmd/common/cli.hpp"
#include "mlmd/common/rng.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/lfd/propagator.hpp"
#include "mlmd/lfd/vloc.hpp"
#include "mlmd/nnq/md_driver.hpp"
#include "mlmd/qxmd/three_body.hpp"

namespace {

using namespace mlmd;

/// Dataset of bond-length-preserving angular distortions: a central atom
/// with 4 neighbours at FIXED distance r0 in random directions, labelled
/// by the three-body energy restricted to centre-apex triplets. The
/// centre's radial fingerprint is constant by construction — the energy
/// variance is carried by angles alone, the failure mode of pair
/// fingerprints (Pozdnyakov et al.'s degenerate-environment problem at
/// its simplest).
nnq::Dataset make_angle_dataset(const nnq::RadialBasis& rb,
                                const nnq::AngularBasis* ab,
                                const qxmd::ThreeBodyParams& tb,
                                std::size_t nconfigs, unsigned long long seed) {
  nnq::Dataset data;
  mlmd::Rng rng(seed);
  const double r0 = 3.0;
  const std::size_t nb = rb.size();
  const std::size_t width = nb + (ab ? ab->size() : 0);
  for (std::size_t c = 0; c < nconfigs; ++c) {
    qxmd::Atoms atoms;
    atoms.resize(5);
    atoms.box = {60, 60, 60};
    atoms.pos(0)[0] = atoms.pos(0)[1] = atoms.pos(0)[2] = 30.0;
    // Random apex directions with pairwise angles kept wide (cos < 0.3),
    // so every apex-apex distance exceeds the descriptor cutoff below:
    // the radial fingerprints of ALL atoms are then constant across the
    // dataset and only angular channels can see the label.
    std::vector<std::array<double, 3>> dirs;
    while (dirs.size() < 4) {
      double u[3] = {rng.normal(), rng.normal(), rng.normal()};
      const double un = std::sqrt(u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
      if (un < 1e-12) continue;
      std::array<double, 3> d{u[0] / un, u[1] / un, u[2] / un};
      bool ok = true;
      for (const auto& e : dirs)
        if (d[0] * e[0] + d[1] * e[1] + d[2] * e[2] > 0.3) ok = false;
      if (ok) dirs.push_back(d);
    }
    for (std::size_t a = 1; a < 5; ++a)
      for (int k = 0; k < 3; ++k)
        atoms.pos(a)[k] = 30.0 + r0 * dirs[a - 1][static_cast<std::size_t>(k)];
    // Cutoff covers only centre-apex bonds (neighbour-neighbour distances
    // reach 2*r0): the label is the pure angular energy at the centre.
    qxmd::ThreeBodyParams tb_local = tb;
    tb_local.rc = 1.3 * r0;
    qxmd::NeighborList nl(atoms, tb_local.rc);
    std::vector<double> f3(15, 0.0);
    nnq::EnergySample s;
    s.energy = qxmd::three_body_energy_forces(atoms, nl, tb_local, f3);

    qxmd::NeighborList nld(atoms, rb.rc);
    auto rad = nnq::atom_descriptors(atoms, nld, rb);
    std::vector<double> full(atoms.n() * width, 0.0);
    for (std::size_t i = 0; i < atoms.n(); ++i)
      for (std::size_t k = 0; k < nb; ++k) full[i * width + k] = rad[i * nb + k];
    if (ab) nnq::angular_descriptors(atoms, nld, *ab, full, width, nb);
    for (std::size_t i = 0; i < atoms.n(); ++i)
      s.features.emplace_back(full.begin() + static_cast<std::ptrdiff_t>(i * width),
                              full.begin() + static_cast<std::ptrdiff_t>((i + 1) * width));
    data.push_back(std::move(s));
  }
  return data;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int epochs = static_cast<int>(cli.integer("epochs", 300));

  // Descriptor cutoff 3.5 Bohr: covers the centre-apex bonds (3.0) but no
  // apex-apex pair (all > 3.55 by the cos < 0.3 rejection above).
  auto rb = nnq::RadialBasis::make(8, 1.5, 3.5, 1.0);
  auto ab = nnq::AngularBasis::make(2, 3.5, 0.05);
  qxmd::ThreeBodyParams tb;
  tb.k3 = cli.real("k3", 0.3);

  std::printf("# descriptor ablation: bond-preserving angular distortions\n");
  auto train_r = make_angle_dataset(rb, nullptr, tb, 80, 11);
  auto test_r = make_angle_dataset(rb, nullptr, tb, 20, 12);
  auto train_a = make_angle_dataset(rb, &ab, tb, 80, 11);
  auto test_a = make_angle_dataset(rb, &ab, tb, 20, 12);

  // z-score feature standardization (fit on train, applied to test).
  auto sc_r = nnq::FeatureScaler::fit(train_r);
  sc_r.apply(train_r);
  sc_r.apply(test_r);
  auto sc_a = nnq::FeatureScaler::fit(train_a);
  sc_a.apply(train_a);
  sc_a.apply(test_a);

  nnq::TrainOptions topt;
  topt.epochs = epochs;
  topt.lr = 2e-3;

  nnq::Mlp net_r({rb.size(), 24, 16, 1}, 31);
  nnq::train_energy(net_r, train_r, topt);
  const double mse_r = nnq::energy_mse(net_r, test_r);

  nnq::Mlp net_a({rb.size() + ab.size(), 24, 16, 1}, 31);
  nnq::train_energy(net_a, train_a, topt);
  const double mse_a = nnq::energy_mse(net_a, test_a);

  std::printf("%-28s %-14s\n", "Model", "test MSE/site");
  std::printf("%-28s %-14.4e\n", "radial only", mse_r);
  std::printf("%-28s %-14.4e\n", "radial + angular (G4)", mse_a);
  std::printf("# angular channels reduce held-out error %.1fx\n", mse_r / mse_a);

  // --- propagator ablation: S2 vs S4 ------------------------------------
  grid::Grid3 g{8, 8, 8, 0.6, 0.6, 0.6};
  auto vloc = lfd::ionic_potential(
      g, {{0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.0, 1.5, 2.0}});
  auto make_wave = [&] {
    lfd::SoAWave<double> w(g, 8);
    lfd::init_plane_waves(w);
    return w;
  };
  auto ref = make_wave();
  {
    lfd::KinParams k;
    k.dt = 0.4 / 1024;
    for (int i = 0; i < 1024; ++i)
      lfd::split_step(ref, vloc, k, lfd::PropOrder::kSecond);
  }
  std::printf("\n# propagator ablation (0.4 a.u. in 16 steps):\n");
  std::printf("%-10s %-12s %-12s\n", "order", "seconds", "error");
  for (auto order : {lfd::PropOrder::kSecond, lfd::PropOrder::kFourth}) {
    auto w = make_wave();
    lfd::KinParams k;
    k.dt = 0.4 / 16;
    Timer t;
    for (int i = 0; i < 16; ++i) lfd::split_step(w, vloc, k, order);
    std::printf("%-10s %-12.4f %-12.3e\n",
                order == lfd::PropOrder::kSecond ? "S2" : "S4", t.seconds(),
                la::max_abs_diff(w.psi, ref.psi));
  }
  std::printf("# expected: S4 ~3x cost, orders-of-magnitude lower error\n");
  return 0;
}
