// Design-choice ablations (DESIGN.md Sec. 4), via google-benchmark:
//   * GSLF/GSLD pair: multigrid vs FFT Hartree solve
//   * SoA vs AoS wavefunction layout for kin_prop (the Sec. V.B.2 claim)
//   * DSA incremental Hartree update vs full multigrid re-solve
//   * shadow-dynamics traffic vs hypothetical full wavefunction transfer

#include <benchmark/benchmark.h>

#include <cstring>
#include <numbers>

#include "mlmd/fft/fft.hpp"
#include "mlmd/lfd/dsa.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/mg/multigrid.hpp"

namespace {

std::vector<double> test_rho(std::size_t n) {
  std::vector<double> rho(n * n * n);
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t z = 0; z < n; ++z)
        rho[(x * n + y) * n + z] =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(x) / n) *
            std::cos(2.0 * std::numbers::pi * static_cast<double>(y) / n);
  return rho;
}

void BM_HartreeMultigrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double h = 10.0 / static_cast<double>(n);
  mlmd::mg::MgOptions opt;
  opt.tol = 1e-6;
  mlmd::mg::Multigrid mg(n, n, n, h, h, h, opt);
  auto rho = test_rho(n);
  for (auto& v : rho) v *= 4.0 * std::numbers::pi;
  std::vector<double> phi;
  for (auto _ : state) {
    phi.assign(rho.size(), 0.0);
    mg.solve(rho, phi);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_HartreeMultigrid)->Arg(16)->Arg(32);

void BM_HartreeFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto rho = test_rho(n);
  std::vector<double> phi;
  for (auto _ : state) {
    mlmd::fft::poisson_periodic(rho, phi, n, n, n, 10.0, 10.0, 10.0);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_HartreeFft)->Arg(16)->Arg(32);

void BM_KinPropSoA(benchmark::State& state) {
  const auto norb = static_cast<std::size_t>(state.range(0));
  mlmd::grid::Grid3 g{16, 16, 16, 0.5, 0.5, 0.5};
  mlmd::lfd::SoAWave<float> w(g, norb);
  mlmd::lfd::init_plane_waves(w);
  mlmd::lfd::KinParams kp;
  kp.dt = 0.04;
  for (auto _ : state) {
    mlmd::lfd::kin_prop(w, kp, mlmd::lfd::KinVariant::kBlocked);
    benchmark::DoNotOptimize(w.psi.data());
  }
}
BENCHMARK(BM_KinPropSoA)->Arg(16)->Arg(64);

void BM_KinPropAoS(benchmark::State& state) {
  const auto norb = static_cast<std::size_t>(state.range(0));
  mlmd::grid::Grid3 g{16, 16, 16, 0.5, 0.5, 0.5};
  mlmd::lfd::SoAWave<float> ws(g, norb);
  mlmd::lfd::init_plane_waves(ws);
  auto w = mlmd::lfd::to_aos(ws);
  mlmd::lfd::KinParams kp;
  kp.dt = 0.04;
  for (auto _ : state) {
    mlmd::lfd::kin_prop_aos(w, kp);
    benchmark::DoNotOptimize(w.psi.data());
  }
}
BENCHMARK(BM_KinPropAoS)->Arg(16)->Arg(64);

void BM_DsaUpdate(benchmark::State& state) {
  const std::size_t n = 16;
  mlmd::grid::Grid3 g{n, n, n, 0.6, 0.6, 0.6};
  mlmd::lfd::DsaHartree dsa(g);
  auto rho = test_rho(n);
  dsa.solve(rho);
  for (auto _ : state) {
    // Slightly drifting density, as between QD steps.
    for (auto& v : rho) v *= 1.0001;
    dsa.update(rho);
    benchmark::DoNotOptimize(dsa.potential().data());
  }
}
BENCHMARK(BM_DsaUpdate);

void BM_DsaFullResolve(benchmark::State& state) {
  const std::size_t n = 16;
  mlmd::grid::Grid3 g{n, n, n, 0.6, 0.6, 0.6};
  mlmd::lfd::DsaHartree dsa(g);
  auto rho = test_rho(n);
  for (auto _ : state) {
    for (auto& v : rho) v *= 1.0001;
    dsa.solve(rho);
    benchmark::DoNotOptimize(dsa.potential().data());
  }
}
BENCHMARK(BM_DsaFullResolve);

void BM_ShadowTrafficPack(benchmark::State& state) {
  // Packing the shadow-dynamics payload (delta_f, N_orb doubles)...
  const std::size_t norb = 1024;
  std::vector<double> df(norb, 0.001), buf(norb);
  for (auto _ : state) {
    std::memcpy(buf.data(), df.data(), norb * sizeof(double));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(norb * sizeof(double)));
}
BENCHMARK(BM_ShadowTrafficPack);

void BM_FullWavefunctionPack(benchmark::State& state) {
  // ...vs what moving the whole wavefunction array would cost (16^3 grid,
  // 64 orbitals, complex<float>): the transfer shadow dynamics avoids.
  const std::size_t count = 16 * 16 * 16 * 64;
  std::vector<std::complex<float>> psi(count), buf(count);
  for (auto _ : state) {
    std::memcpy(buf.data(), psi.data(), count * sizeof(std::complex<float>));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count * sizeof(std::complex<float>)));
}
BENCHMARK(BM_FullWavefunctionPack);

} // namespace

BENCHMARK_MAIN();
