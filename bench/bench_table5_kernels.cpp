// Table V reproduction: FLOP/s of the hotspot kernels for the 1,024-
// orbital problem — CGEMM(1) (orbital overlap), CGEMM(2) (nonlocal
// update, Eq. 5), the full nlp_prop(), and kin_prop().
//
// Expected shape (paper: 81.4% / 94.2% / 69.7% / 15.3% of peak): the
// dense CGEMMs run at a much higher fraction of machine peak than the
// memory-bound stencil; nlp_prop sits between its two GEMMs. Absolute
// GFLOP/s here are one-CPU-core numbers; "% of peak" is reported against
// a measured DGEMM-style peak for this host.
//
// Default problem is scaled down (--norb=256, n=16) so the default run
// finishes in seconds; pass --paper for 1,024 orbitals on 24^3.
//
// A second section reports intra-node ThreadPool scaling: each pooled
// kernel timed serial (threads=1) vs pooled (threads=N, from --threads=N
// or MLMD_NUM_THREADS or the hardware default). On a single-core host the
// pool collapses to the serial fallback and speedups print ~1.0.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/common/workspace.hpp"
#include "mlmd/la/gemm.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/lfd/nlp_prop.hpp"
#include "mlmd/maxwell/maxwell3d.hpp"
#include "mlmd/obs/obs.hpp"
#include "mlmd/par/thread_pool.hpp"
#include "mlmd/simd/simd.hpp"

namespace {

struct Meas {
  double gflops = 0.0;
  double seconds = 0.0;
  unsigned long long bytes_alloc = 0; ///< arena growth in the final rep
  unsigned long long span_count = 0;  ///< tracer spans recorded (all reps)
};

template <class Fn>
Meas measure(Fn&& fn, int reps) {
  // Best-of-N: peak-rate measurements take the fastest repetition so a
  // background scheduling hiccup cannot misorder the kernel ranking.
  // bytes_alloc is taken from the final repetition, when the Workspace
  // arena is warm — the engine's zero-steady-state-alloc contract makes
  // it 0 unless something regressed.
  Meas best;
  best.seconds = 1e300;
  unsigned long long last_delta = 0;
  const auto spans0 = mlmd::obs::Tracer::span_count();
  for (int i = 0; i < reps; ++i) {
    const auto r0 = mlmd::common::Workspace::total_reserved_bytes();
    mlmd::flops::Scope scope;
    mlmd::Timer t;
    fn();
    const double secs = t.seconds();
    last_delta = mlmd::common::Workspace::total_reserved_bytes() - r0;
    if (secs < best.seconds) {
      best.seconds = secs;
      best.gflops = static_cast<double>(scope.flops()) / secs / 1e9;
    }
  }
  best.bytes_alloc = last_delta;
  best.span_count = mlmd::obs::Tracer::span_count() - spans0;
  return best;
}

} // namespace

int main(int argc, char** argv) {
  using namespace mlmd;
  using cf = std::complex<float>;
  Cli cli(argc, argv);
  if (!cli.check_known({"threads", "paper", "norb", "n", "reps", "trace",
                        "json", "simd"},
                       "usage: bench_table5_kernels [--threads=N] [--paper] "
                       "[--norb=N] [--n=N] [--reps=N] [--trace[=path]] "
                       "[--json=path] [--simd=scalar|avx2|avx512]"))
    return 1;
  try {
    simd::set_target(
        cli.choice("simd", simd::kTargetChoices, simd::active_target()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (cli.has("threads"))
    par::ThreadPool::set_global_threads(
        static_cast<int>(cli.integer("threads", 0)));
  const int nthr = par::num_threads();
  const bool paper = cli.flag("paper");
  const std::size_t norb =
      paper ? 1024 : static_cast<std::size_t>(cli.integer("norb", 256));
  const std::size_t n = paper ? 24 : static_cast<std::size_t>(cli.integer("n", 16));
  const int reps = static_cast<int>(cli.integer("reps", paper ? 2 : 5));
  const std::string trace_path =
      obs::init_tracing(cli.has("trace") ? cli.str("trace") : "");

  grid::Grid3 g{n, n, n, 0.5, 0.5, 0.5};
  const std::size_t ngrid = g.size();

  lfd::SoAWave<float> w(g, norb);
  lfd::init_plane_waves(w);
  la::Matrix<cf> psi0 = w.psi;
  la::Matrix<cf> s(norb, norb);
  const cf one(1.0f, 0.0f), dv(static_cast<float>(g.dv()), 0.0f);

  // Host peak reference: a large square FP32 GEMM (the best this
  // implementation can do on this machine).
  la::Matrix<float> pa(512, 512, 1.0f), pb(512, 512, 1.0f), pc(512, 512);
  const auto peak = measure(
      [&] { la::gemm(la::Trans::kN, la::Trans::kN, 1.0f, pa, pb, 0.0f, pc); }, 5);

  std::printf("# Table V: hotspot kernels, %zu orbitals on %zu^3 grid (FP32)\n",
              norb, n);
  std::printf("# host peak reference (512^3 SGEMM): %.2f GFLOP/s\n", peak.gflops);
  std::printf("%-12s %-14s %-10s\n", "Kernel", "GFLOP/s", "% of peak");

  const auto cgemm1 = measure(
      [&] { la::gemm(la::Trans::kC, la::Trans::kN, dv, psi0, w.psi, cf{}, s); },
      reps);
  std::printf("%-12s %-14.2f %-10.1f\n", "CGEMM(1)", cgemm1.gflops,
              100.0 * cgemm1.gflops / peak.gflops);

  const auto cgemm2 = measure(
      [&] {
        la::gemm(la::Trans::kN, la::Trans::kN, cf(0.01f, 0.0f), psi0, s, one,
                 w.psi);
      },
      reps);
  std::printf("%-12s %-14.2f %-10.1f\n", "CGEMM(2)", cgemm2.gflops,
              100.0 * cgemm2.gflops / peak.gflops);

  const auto nlp = measure(
      [&] { lfd::nlp_prop(w, psi0, std::complex<double>(0.0, -0.001)); }, reps);
  std::printf("%-12s %-14.2f %-10.1f\n", "nlp_prop()", nlp.gflops,
              100.0 * nlp.gflops / peak.gflops);

  lfd::KinParams kp;
  kp.dt = 0.04;
  const auto kin = measure([&] { lfd::kin_prop(w, kp); }, reps);
  std::printf("%-12s %-14.2f %-10.1f\n", "kin_prop()", kin.gflops,
              100.0 * kin.gflops / peak.gflops);

  std::printf("# paper reference (PVC tile): CGEMM 81.4/94.2%%, nlp_prop "
              "69.7%%, kin_prop 15.3%% of peak\n");
  // With the packed engine nlp_prop is GEMM-bound, so it lands within
  // measurement noise of its constituent CGEMMs; allow 2% slack so run-to-
  // run frequency jitter cannot flip the verdict.
  const double gmax = std::max(cgemm1.gflops, cgemm2.gflops);
  std::printf("# shape check: GEMM%%>=nlp%%>kin%% -> %s\n",
              (1.02 * gmax >= nlp.gflops && nlp.gflops > kin.gflops) ? "OK"
                                                                     : "MIXED");
  // Note: n_grid=%zu keeps CGEMM(2)'s k=norb vs CGEMM(1)'s k=n_grid split
  // visible, as in the paper's two row-column combinations.
  (void)ngrid;

  if (cli.has("json")) {
    // Single-process kernels move no SimComm traffic; comm_* stay 0.
    const std::vector<benchjson::Record> recs{
        {"sgemm_peak_512", peak.gflops, peak.bytes_alloc, peak.seconds, 0, 0.0,
         peak.span_count},
        {"cgemm1", cgemm1.gflops, cgemm1.bytes_alloc, cgemm1.seconds, 0, 0.0,
         cgemm1.span_count},
        {"cgemm2", cgemm2.gflops, cgemm2.bytes_alloc, cgemm2.seconds, 0, 0.0,
         cgemm2.span_count},
        {"nlp_prop", nlp.gflops, nlp.bytes_alloc, nlp.seconds, 0, 0.0,
         nlp.span_count},
        {"kin_prop", kin.gflops, kin.bytes_alloc, kin.seconds, 0, 0.0,
         kin.span_count},
    };
    const std::string path = cli.str("json");
    if (!benchjson::write(path, recs))
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }

  // ---- intra-node ThreadPool scaling: serial vs pool --------------------
  std::printf("\n# ThreadPool scaling: threads=1 (serial fallback) vs "
              "threads=%d\n", nthr);
  std::printf("%-14s %-12s %-12s %-10s\n", "Kernel", "serial[s]", "pool[s]",
              "speedup");
  auto scaling_row = [&](const char* name, auto&& fn) {
    par::ThreadPool::set_global_threads(1);
    const auto s = measure(fn, reps);
    par::ThreadPool::set_global_threads(nthr);
    const auto p = measure(fn, reps);
    std::printf("%-14s %-12.5f %-12.5f %-10.2f\n", name, s.seconds, p.seconds,
                p.seconds > 0.0 ? s.seconds / p.seconds : 0.0);
  };
  scaling_row("SGEMM-512", [&] {
    la::gemm(la::Trans::kN, la::Trans::kN, 1.0f, pa, pb, 0.0f, pc);
  });
  scaling_row("CGEMM(2)", [&] {
    la::gemm(la::Trans::kN, la::Trans::kN, cf(0.01f, 0.0f), psi0, s, one,
             w.psi);
  });
  scaling_row("kin_prop", [&] { lfd::kin_prop(w, kp); });
  const std::size_t mxn = paper ? 64 : 32;
  maxwell::Maxwell3D em(mxn, mxn, mxn, 1.0, 2e-3);
  em.seed_plane_wave(2, 0.1);
  scaling_row("maxwell3d", [&] {
    for (int i = 0; i < 10; ++i) em.step();
  });

  if (!trace_path.empty()) {
    const double gemm_s = obs::Tracer::summed_seconds("gemm");
    std::printf("# trace: %.4f s total in gemm spans\n", gemm_s);
    obs::finish_tracing(trace_path);
  }
  return 0;
}
