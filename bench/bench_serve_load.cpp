// bench_serve_load — load generator for the mlmd::serve scheduler
// (DESIGN.md Sec. 14, ISSUE 9 acceptance bench).
//
// Closed loop (default): --tenants concurrent tenants keep --per-tenant
// kNeural scenarios in flight until all complete; the same load is served
// twice, first with cross-request batching disabled (batch size 1), then
// with the micro-batcher on, so the batching speedup on sustained
// scenario throughput is a measured, regression-tested number.
//
// Open loop (--mode=open --rps=R): scenarios are offered at a fixed rate
// regardless of completion; admission control sheds the excess
// (rejected counts in the "serve" block show the backpressure working).
//
// Emits benchjson schema v2 with the optional "serve" block
// (offered/sustained throughput, p50/p95/p99 latency from the per-tenant
// obs histogram lanes, batch occupancy); validated by trace_check.
//
// Liveness knobs (DESIGN.md Sec. 15): --deadline-ms stamps every offered
// scenario with a per-request deadline and --shed-watermark-ms arms
// p95-queue-wait load shedding; when either mechanism fires during the
// measured (batched) phase the JSON gains the optional "liveness" block
// (deadline hits, sheds, stall detections, drain totals).
//
//   bench_serve_load [--tenants=4] [--per-tenant=3] [--lattice=16]
//                    [--xs-steps=30] [--inflight=8] [--batch-max=8]
//                    [--mode=closed|open] [--rps=4] [--queue-cap=8]
//                    [--deadline-ms=D] [--shed-watermark-ms=W]
//                    [--threads=N] [--json=PATH]

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/nnq/train.hpp"
#include "mlmd/par/thread_pool.hpp"
#include "mlmd/serve/server.hpp"

namespace {

using namespace mlmd;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LoadShape {
  int tenants = 4;
  int per_tenant = 3;
  std::size_t lattice = 16;
  int xs_steps = 30;
};

serve::Request make_request(const LoadShape& shape, int tenant, int r,
                            long id) {
  serve::Request req;
  req.tenant = tenant;
  req.id = id;
  req.dark = (r % 2) == 1;
  req.gs_model = "gs";
  req.xs_model = "xs";
  auto& opt = req.opt;
  opt.backend = pipeline::ForceBackend::kNeural;
  opt.lattice = shape.lattice;
  opt.superlattice = 1;
  opt.relax_steps = 60;
  opt.grid_n = 8;
  opt.norb = 4;
  opt.nfilled = 2;
  opt.mesh_md_steps = 2;
  opt.mesh.nqd_per_md = 10;
  opt.mesh.lfd.dt_qd = 0.06;
  opt.xs_steps = shape.xs_steps;
  opt.record_every = 10;
  opt.pulse.e0 = 0.10 + 0.01 * static_cast<double>(r % 5);
  opt.pulse.omega = 0.15;
  opt.pulse.fwhm = 30.0;
  opt.n_sat = 0.02;
  return req;
}

struct PhaseResult {
  double elapsed_s = 0.0;
  long completed = 0;
  long rejected = 0;
};

/// Serve one full load through a fresh Server; the registry is reset
/// first so the serve.* instruments describe exactly this phase.
PhaseResult run_phase(const LoadShape& shape, serve::ServerOptions sopt,
                      std::shared_ptr<serve::ModelRegistry> models,
                      const std::string& mode, double rps) {
  obs::Registry::global().reset();
  serve::Server server(std::move(sopt), std::move(models));
  server.start();

  PhaseResult out;
  const double t0 = now_s();
  long id = 0;
  for (int r = 0; r < shape.per_tenant; ++r) {
    for (int t = 0; t < shape.tenants; ++t) {
      auto ticket = server.submit(make_request(shape, t, r, ++id));
      if (!ticket.accepted) ++out.rejected;
      if (mode == "open" && rps > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(1.0 / rps));
    }
  }
  server.wait_all();
  out.elapsed_s = now_s() - t0;
  out.completed = server.stats().completed;
  server.stop();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (!cli.check_known({"tenants", "per-tenant", "lattice", "xs-steps",
                        "inflight", "batch-max", "mode", "rps", "queue-cap",
                        "quota", "deadline-ms", "shed-watermark-ms", "threads",
                        "json"},
                       "usage: bench_serve_load [--tenants=4] [--per-tenant=3]"
                       " [--mode=closed|open] [--json=PATH] ..."))
    return 1;
  try {
    if (cli.has("threads"))
      par::ThreadPool::set_global_threads(
          static_cast<int>(cli.integer("threads", 0)));

    LoadShape shape;
    shape.tenants = static_cast<int>(cli.integer("tenants", 4));
    shape.per_tenant = static_cast<int>(cli.integer("per-tenant", 3));
    shape.lattice = static_cast<std::size_t>(cli.integer("lattice", 16));
    shape.xs_steps = static_cast<int>(cli.integer("xs-steps", 30));
    const std::string mode = cli.str("mode", "closed");
    if (mode != "closed" && mode != "open")
      throw std::invalid_argument("--mode must be closed or open");
    const double rps = cli.real("rps", 4.0);
    const long total = static_cast<long>(shape.tenants) * shape.per_tenant;

    auto models = std::make_shared<serve::ModelRegistry>();
    {
      auto gs_data = nnq::sample_ferro_dataset(8, 8, 0.05, 10, 5, 0.0, 81);
      auto xs_data = nnq::sample_ferro_dataset(8, 8, 0.05, 10, 5, 0.45, 82);
      auto gs = std::make_shared<nnq::LatticeModel>(
          std::vector<std::size_t>{12, 12}, 5);
      auto xs = std::make_shared<nnq::LatticeModel>(
          std::vector<std::size_t>{12, 12}, 6);
      nnq::TrainOptions topt;
      topt.epochs = 10;
      nnq::train_energy(gs->net(), gs_data, topt);
      nnq::train_energy(xs->net(), xs_data, topt);
      models->add("gs", std::move(gs));
      models->add("xs", std::move(xs));
    }

    serve::ServerOptions sopt;
    sopt.max_inflight = static_cast<std::size_t>(cli.integer("inflight", 8));
    sopt.batch_max = static_cast<std::size_t>(cli.integer("batch-max", 8));
    sopt.queue_capacity = static_cast<std::size_t>(cli.integer(
        "queue-cap", mode == "open" ? 8 : total + 8));
    sopt.tenant_quota = static_cast<std::size_t>(cli.integer("quota", 0));
    sopt.checkpoint_every = 0;
    const double deadline_ms = cli.real("deadline-ms", -1.0);
    if (deadline_ms > 0.0) sopt.default_deadline_ms = deadline_ms;
    sopt.shed_watermark_ms = cli.real("shed-watermark-ms", 0.0);

    // Phase 1: the same load with cross-request batching off — the
    // baseline the speedup is measured against.
    serve::ServerOptions batch1 = sopt;
    batch1.batch = false;
    const auto base = run_phase(shape, batch1, models, mode, rps);

    // Phase 2: micro-batcher on. run_phase resets the registry, so the
    // liveness snapshot below describes exactly this measured phase.
    const auto batched = run_phase(shape, sopt, models, mode, rps);

    const auto liveness = benchjson::liveness_stats_from_registry();
    auto& reg = obs::Registry::global();
    const auto& lat = reg.histogram("serve.latency_seconds");
    const auto& occ = reg.histogram("serve.batch.occupancy");

    benchjson::ServeStats serve_stats;
    serve_stats.mode = mode;
    serve_stats.tenants = static_cast<unsigned long long>(shape.tenants);
    serve_stats.sessions = static_cast<unsigned long long>(total);
    serve_stats.sustained_rps =
        batched.elapsed_s > 0
            ? static_cast<double>(batched.completed) / batched.elapsed_s
            : 0.0;
    serve_stats.sustained_rps_batch1 =
        base.elapsed_s > 0
            ? static_cast<double>(base.completed) / base.elapsed_s
            : 0.0;
    serve_stats.offered_rps =
        mode == "open"
            ? rps * shape.tenants
            : serve_stats.sustained_rps; // closed loop: offered = sustained
    serve_stats.batch_speedup =
        serve_stats.sustained_rps_batch1 > 0
            ? serve_stats.sustained_rps / serve_stats.sustained_rps_batch1
            : 0.0;
    serve_stats.latency_p50_s = lat.quantile(0.50);
    serve_stats.latency_p95_s = lat.quantile(0.95);
    serve_stats.latency_p99_s = lat.quantile(0.99);
    serve_stats.batch_occupancy_mean = occ.mean();
    serve_stats.completed = static_cast<unsigned long long>(batched.completed);
    serve_stats.rejected = static_cast<unsigned long long>(batched.rejected);

    std::printf("%-22s %10s %12s %10s\n", "phase", "elapsed", "sustained",
                "completed");
    std::printf("%-22s %9.3fs %9.3f/s %10ld\n", "closed.batch1",
                base.elapsed_s, serve_stats.sustained_rps_batch1,
                base.completed);
    std::printf("%-22s %9.3fs %9.3f/s %10ld\n", "closed.batchN",
                batched.elapsed_s, serve_stats.sustained_rps,
                batched.completed);
    std::printf("batch speedup: %.2fx (occupancy mean %.2f)\n",
                serve_stats.batch_speedup, serve_stats.batch_occupancy_mean);
    std::printf("latency p50/p95/p99: %.3f / %.3f / %.3f s\n",
                serve_stats.latency_p50_s, serve_stats.latency_p95_s,
                serve_stats.latency_p99_s);
    if (liveness.any())
      std::printf("liveness: %llu deadline hits, %llu sheds, %llu stalls "
                  "detected, %llu drained\n",
                  liveness.deadline_hits, liveness.sheds,
                  liveness.stall_detections, liveness.drained);

    if (cli.has("json")) {
      std::vector<benchjson::Record> recs(2);
      recs[0].kernel = "serve." + mode + ".batch1";
      recs[0].seconds = base.elapsed_s;
      recs[1].kernel = "serve." + mode + ".batchN";
      recs[1].seconds = batched.elapsed_s;
      if (!benchjson::write(cli.str("json"), recs, nullptr, "", "",
                            &serve_stats, &liveness)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     cli.str("json").c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
