// Fig. 4 reproduction: DC-MESH weak scaling (a) at 32 and 128 electrons
// per rank for P = 6,144 ... 120,000, and strong scaling (b) for a
// 12,582,912-electron system over P = 24,576 ... 98,304.
//
// Compute coefficients are FIT FROM MEASURED single-domain DC-MESH runs
// on this host (several granularities); the network is the calibrated
// Dragonfly-like alpha-beta model (DESIGN.md substitution). Also checks
// the paper's aggregate-EFLOP/s accounting rule and runs a real SimComm
// multi-rank mini-version to validate the communication pattern — over
// the in-process backend or, with --transport=shm, over real forked
// processes and shared memory (DESIGN.md Sec. 11), which makes the
// mini-run's communication points *measured* rather than modeled.
//
// --json=<path> emits benchjson schema v2 with one record per SimComm
// rank of the mini-run (comm_bytes = that rank's exact contributed
// bytes); the per-rank records must be identical between --transport
// values for the same configuration (trace_check --compare-comm).
// --model=0 skips the calibration and analytic sweeps (CI smoke runs).
//
// Expected shape: weak-scaling wall time ~flat (efficiency ~1.0 at 128
// e/rank); strong-scaling efficiency decays with P (paper: 0.843 at
// 98,304 ranks).

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/mesh/baseline.hpp"
#include "mlmd/mesh/multidomain.hpp"
#include "mlmd/par/transport.hpp"
#include "mlmd/perf/machine.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  if (!cli.check_known(
          {"steps", "node_speedup", "model", "ranks", "md_steps", "transport",
           "comm", "json"},
          "usage: bench_fig4_dcmesh_scaling [--steps=N] [--node_speedup=X] "
          "[--model=0|1] [--ranks=N] [--md_steps=N] "
          "[--transport=inproc|shm] [--comm=sync|async] [--json=path]"))
    return 1;

  int steps = 8, ranks = 4, md_steps = 1;
  bool model = true;
  double node_speedup_flag = -1.0;
  std::string json_path;
  try {
    steps = static_cast<int>(cli.integer("steps", 8));
    ranks = static_cast<int>(cli.integer("ranks", 4));
    md_steps = static_cast<int>(cli.integer("md_steps", 1));
    model = cli.flag("model", true);
    node_speedup_flag = cli.real("node_speedup", -1.0);
    json_path = cli.str("json", "");
    par::set_default_transport(cli.choice("transport", par::kTransportChoices,
                                          par::default_transport()));
    par::set_default_comm_mode(cli.choice("comm", par::kCommModeChoices,
                                          par::default_comm_mode()));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // --- calibrate the per-rank compute model from real runs --------------
  if (model) {
    std::printf("# calibrating DC-MESH per-domain cost from measured runs...\n");
    std::vector<double> nelec, secs;
    struct Cfg {
      std::size_t n, norb;
    };
    for (const Cfg& c : {Cfg{10, 8}, Cfg{12, 16}, Cfg{14, 32}, Cfg{16, 64}}) {
      auto r = mesh::run_dc_domain(c.n, c.norb, steps);
      nelec.push_back(static_cast<double>(r.electrons));
      secs.push_back(r.seconds_per_qd_step * static_cast<double>(r.electrons) /
                     static_cast<double>(r.electrons)); // sec per QD step
      std::printf("#   %3zu electrons: %.4e s/QD-step\n", r.electrons,
                  r.seconds_per_qd_step);
    }
    auto comp = perf::DcMeshCompute::fit(nelec, secs);
    // Scale the measured per-domain cost to the paper's node class: Aurora
    // spends ~1.7 ms per rank per QD step at 128 electrons/rank (1.705 s
    // per 1000-QD-step MD step, Sec. VII.C.1); this host is a few times
    // slower at the same granularity. The comm/compute ratio — and hence
    // the scaling shape — is evaluated at that node speed.
    const double node_speedup =
        node_speedup_flag > 0.0
            ? node_speedup_flag
            : std::max(1.0, comp.seconds(128) / 1.7e-3);
    comp.a /= node_speedup;
    comp.b /= node_speedup;
    std::printf("# fit: T_dom(n) = %.3e*n + %.3e*n^2 s/QD-step "
                "(node speedup %.1fx applied)\n", comp.a, comp.b, node_speedup);

    perf::Network net;
    const std::vector<long> weak_ranks = {6144, 12288, 24576, 49152, 98304,
                                          120000};

    for (long gran : {32L, 128L}) {
      std::printf("\n# Fig 4a: weak scaling, %ld electrons/rank\n", gran);
      std::printf("%-10s %-14s %-14s %-12s\n", "ranks", "electrons", "sec/step",
                  "efficiency");
      for (const auto& sp :
           perf::dcmesh_weak_scaling(comp, net, weak_ranks, gran))
        std::printf("%-10ld %-14ld %-14.5f %-12.4f\n", sp.p, sp.p * gran,
                    sp.seconds, sp.efficiency);
    }

    std::printf("\n# Fig 4b: strong scaling, 12,582,912 electrons\n");
    std::printf("%-10s %-16s %-14s %-12s\n", "ranks", "electrons/rank",
                "sec/step", "efficiency");
    const std::vector<long> strong_ranks = {24576, 49152, 98304};
    for (const auto& sp :
         perf::dcmesh_strong_scaling(comp, net, strong_ranks, 12582912)) {
      std::printf("%-10ld %-16ld %-14.5f %-12.4f\n", sp.p, 12582912 / sp.p,
                  sp.seconds, sp.efficiency);
    }
    std::printf("# paper reference: weak efficiency ~1.0 at 120,000 ranks; "
                "strong efficiency 0.843 at 98,304 ranks\n");

    // --- aggregate FLOP/s accounting (Sec. VII.B) -------------------------
    flops::reset();
    auto r = mesh::run_dc_domain(12, 16, steps);
    const double flops_per_domain =
        static_cast<double>(flops::total()) / steps; // per QD step
    const double agg = perf::aggregate_flops_per_sec(flops_per_domain, 120000,
                                                     comp.seconds(32));
    std::printf("\n# aggregate-FLOPs rule: %.3e FLOP/domain/step x 120,000 "
                "domains / %.2e s = %.3e FLOP/s (model)\n",
                flops_per_domain, comp.seconds(32), agg);
    (void)r;
  }

  // --- real SimComm mini-run validating the communication pattern ------
  const char* transport = par::transport_name(par::default_transport());
  const char* comm_mode = par::comm_mode_name(par::default_comm_mode());
  mesh::ParallelMeshOptions popt;
  popt.md_steps = md_steps;
  popt.grid_n = 8;
  popt.norb = 4;
  popt.nfilled = 2;
  popt.mesh.nqd_per_md = 10;
  auto res = mesh::run_parallel_mesh(ranks, popt);
  std::printf("\n# SimComm validation (%d ranks, %d MD step(s), transport "
              "%s, comm %s): n_exc gathered from %zu domains, %llu collective "
              "ops, %llu bytes\n",
              ranks, md_steps, transport, comm_mode,
              res.n_exc_per_domain.size(),
              static_cast<unsigned long long>(res.traffic.collective_ops),
              static_cast<unsigned long long>(res.traffic.collective_bytes));
  for (std::size_t r = 0; r < res.rank_traffic.size(); ++r) {
    unsigned long long bytes = 0, calls = 0;
    for (const auto& [op, st] : res.rank_traffic[r].ops) {
      bytes += st.bytes;
      calls += st.calls;
    }
    std::printf("#   rank %zu: %llu comm calls, %llu bytes, %.3e s waiting, "
                "%.3e s overlapped (%llu/%llu handles)\n",
                r, calls, bytes, res.rank_traffic[r].wait_seconds,
                res.rank_traffic[r].overlap_seconds,
                static_cast<unsigned long long>(
                    res.rank_traffic[r].handles_completed),
                static_cast<unsigned long long>(
                    res.rank_traffic[r].handles_posted));
  }

  if (!json_path.empty()) {
    // One record per rank of the measured mini-run: comm_bytes is the
    // rank's exact contributed payload, which must match bit-for-bit
    // between the inproc and shm transports for the same configuration
    // (trace_check --compare-comm enforces this in CI).
    std::vector<benchjson::Record> recs;
    for (std::size_t r = 0; r < res.rank_traffic.size(); ++r) {
      benchjson::Record rec;
      rec.kernel = "dcmesh_mini.rank" + std::to_string(r);
      rec.seconds = res.wall_seconds;
      for (const auto& [op, st] : res.rank_traffic[r].ops)
        rec.comm_bytes += st.bytes;
      rec.comm_seconds = res.rank_traffic[r].wait_seconds;
      rec.comm_overlap_seconds = res.rank_traffic[r].overlap_seconds;
      rec.handles_posted = res.rank_traffic[r].handles_posted;
      rec.handles_completed = res.rank_traffic[r].handles_completed;
      recs.push_back(rec);
    }
    if (!benchjson::write(json_path, recs, nullptr, transport, comm_mode)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# wrote %s (transport %s, comm %s)\n", json_path.c_str(),
                transport, comm_mode);
  }
  return 0;
}
