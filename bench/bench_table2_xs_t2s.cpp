// Table II reproduction: XS-NNQMD time-to-solution, defined by the paper
// as seconds / (atom * weight * MD step) to normalize across model sizes.
//
// Baseline: a 440-weight small network (matching Linker et al. 2022's
// model size). This work: a larger Allegro-FM-style network. The paper's
// claim is that the per-(atom*weight) cost *drops* for the bigger, better-
// structured model on better hardware; here both run on one core, so the
// measured ratio reflects the software efficiency term, and the machine
// model extrapolates to the paper's 1.23 trillion atoms on 10,000 nodes.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/ft/fault.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/common/workspace.hpp"
#include "mlmd/nnq/allegro.hpp"
#include "mlmd/obs/obs.hpp"
#include "mlmd/perf/machine.hpp"
#include "mlmd/qxmd/atoms.hpp"
#include "mlmd/qxmd/neighbor.hpp"

namespace {

struct Meas {
  double sec_per_step = 0.0;
  double t2s = 0.0; ///< sec / (atom * weight * step)
  double gflops = 0.0;
  unsigned long long bytes_alloc = 0; ///< arena growth in the final step
  std::size_t weights = 0;
  double total_seconds = 0.0; ///< wall time summed over ALL repetitions
  unsigned long long span_count = 0;
  mlmd::obs::CommTotals comm;
};

Meas measure_model(const mlmd::nnq::AtomModel& model, const mlmd::qxmd::Atoms& atoms,
                   const mlmd::qxmd::NeighborList& nl, int steps) {
  // Best-of-N per step (as in bench_table5): a scheduling hiccup in one
  // step cannot inflate the recorded time-to-solution. bytes_alloc comes
  // from the final, arena-warm step.
  std::vector<double> forces;
  Meas m;
  m.sec_per_step = 1e300;
  const auto spans0 = mlmd::obs::Tracer::span_count();
  const auto comm0 = mlmd::obs::comm_totals();
  for (int i = 0; i < steps; ++i) {
    mlmd::ft::set_step(i);
    const auto r0 = mlmd::common::Workspace::total_reserved_bytes();
    mlmd::flops::Scope scope;
    mlmd::Timer t;
    model.energy_forces(atoms, nl, forces, /*block_size=*/4096);
    // Fault-injection point (--faults / MLMD_FAULTS): corrupted forces
    // here surface in the emitted "ft" benchjson block.
    if (!forces.empty()) mlmd::ft::hook_forces(i, forces.data(), forces.size());
    const double secs = t.seconds();
    m.total_seconds += secs;
    m.bytes_alloc = mlmd::common::Workspace::total_reserved_bytes() - r0;
    if (secs < m.sec_per_step) {
      m.sec_per_step = secs;
      m.gflops = static_cast<double>(scope.flops()) / secs / 1e9;
    }
  }
  const auto comm1 = mlmd::obs::comm_totals();
  m.span_count = mlmd::obs::Tracer::span_count() - spans0;
  m.comm.bytes = comm1.bytes - comm0.bytes;
  m.comm.wait_seconds = comm1.wait_seconds - comm0.wait_seconds;
  m.weights = model.n_weights();
  m.t2s = m.sec_per_step /
          (static_cast<double>(atoms.n()) * static_cast<double>(m.weights));
  return m;
}

} // namespace

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  if (!cli.check_known({"lattice", "steps", "trace", "json", "faults"},
                       "usage: bench_table2_xs_t2s [--lattice=N] [--steps=N] "
                       "[--trace[=path]] [--json=path] [--faults=SPEC]"))
    return 1;
  const auto lat = static_cast<std::size_t>(cli.integer("lattice", 12));
  const int steps = static_cast<int>(cli.integer("steps", 3));
  const std::string trace_path =
      obs::init_tracing(cli.has("trace") ? cli.str("trace") : "");

  // Optional deterministic fault injection (DESIGN.md Sec. 10): same
  // SPEC syntax as mlmd_run; injections land in the forces hook above
  // and in the emitted benchjson "ft" block.
  std::string fault_spec = cli.str("faults", "");
  if (fault_spec.empty())
    if (const char* env = std::getenv("MLMD_FAULTS")) fault_spec = env;
  std::optional<ft::ScopedFaults> faults;
  if (!fault_spec.empty()) {
    try {
      faults.emplace(fault_spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: bad --faults spec: %s\n", e.what());
      return 1;
    }
  }

  auto atoms = qxmd::make_cubic_lattice(lat, lat, lat, 5.0, 2000.0);
  qxmd::NeighborList nl(atoms, 9.0);

  // Baseline: descriptor 8 -> [25, 8] -> 1 gives 442 weights, matching the
  // 440-weight model of Linker et al. (2022).
  nnq::AtomModel small(nnq::RadialBasis::make(8, 2.0, 9.0, 1.5), {25, 8});
  // This work: FM-scale network (weights count like the paper's 690k is
  // infeasible at laptop latency; scaled proportionally).
  nnq::AtomModel big(nnq::RadialBasis::make(16, 2.0, 9.0, 1.2), {64, 64, 32});

  std::printf("# Table II: XS-NNQMD T2S [sec/(atom*weight*step)], %zu atoms\n",
              atoms.n());
  std::printf("%-26s %-10s %-12s %-14s\n", "Model", "weights", "sec/step",
              "T2S");

  const auto m_small = measure_model(small, atoms, nl, steps);
  std::printf("%-26s %-10zu %-12.4f %-14.4e\n", "Small net (SOTA 2022)",
              m_small.weights, m_small.sec_per_step, m_small.t2s);
  const auto m_big = measure_model(big, atoms, nl, steps);
  std::printf("%-26s %-10zu %-12.4f %-14.4e\n", "Allegro-FM style (this work)",
              m_big.weights, m_big.sec_per_step, m_big.t2s);
  std::printf("# measured T2S improvement: %.1fx (paper: 3,780x incl. Aurora "
              "vs Theta hardware)\n", m_small.t2s / m_big.t2s);

  // Machine-model extrapolation to the paper's run.
  perf::NnqmdCompute comp;
  comp.t_atom = m_big.sec_per_step / static_cast<double>(atoms.n());
  perf::Network net;
  const long p = 120000;
  const double atoms_per_rank = 1.2288e12 / static_cast<double>(p);
  const double t_step = comp.t_atom * atoms_per_rank +
                        net.halo(static_cast<std::size_t>(
                            6.0 * std::pow(atoms_per_rank, 2.0 / 3.0) * 64.0)) +
                        net.allreduce(p, 8);
  std::printf("# model-extrapolated paper config (1.2288e12 atoms, %ld ranks): "
              "%.1f sec/step -> T2S %.3e s/(atom*weight)\n",
              p, t_step,
              t_step / (1.2288e12 * static_cast<double>(m_big.weights)));
  std::printf("# paper reference: 7.09e-12 (Theta, 2022) -> 1.88e-15 (Aurora, "
              "this work)\n");

  if (cli.has("json")) {
    const std::vector<benchjson::Record> recs{
        {"table2_small_net", m_small.gflops, m_small.bytes_alloc,
         m_small.sec_per_step, m_small.comm.bytes, m_small.comm.wait_seconds,
         m_small.span_count},
        {"table2_big_net", m_big.gflops, m_big.bytes_alloc, m_big.sec_per_step,
         m_big.comm.bytes, m_big.comm.wait_seconds, m_big.span_count},
    };
    const std::string path = cli.str("json");
    const auto ft_stats = benchjson::ft_stats_from_registry();
    if (!benchjson::write(path, recs, &ft_stats))
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }

  if (!trace_path.empty()) {
    // Tracer-accuracy cross-check (EXPERIMENTS.md): the nnq.energy_forces
    // kernel spans bracket exactly the region the bench timed itself, so
    // their sum must match the measured kernel wall to within 10% — a
    // mismatch means the tracer's clocks or span bracketing drifted. The
    // gemm line below that is the compute breakdown: at these model sizes
    // energy_forces is descriptor-bound, so gemm is a minority share.
    const double ef_s = obs::Tracer::summed_seconds("nnq.energy_forces");
    const double gemm_s = obs::Tracer::summed_seconds("gemm");
    const double wall_s = m_small.total_seconds + m_big.total_seconds;
    std::printf("# trace: %.4f s in energy_forces spans vs %.4f s measured "
                "kernel wall (%.1f%%)\n",
                ef_s, wall_s, wall_s > 0 ? 100.0 * ef_s / wall_s : 0.0);
    std::printf("# trace: %.4f s (%.1f%% of kernel wall) inside gemm spans\n",
                gemm_s, wall_s > 0 ? 100.0 * gemm_s / wall_s : 0.0);
    obs::finish_tracing(trace_path);
  }
  return 0;
}
