// Table IV reproduction: DC-MESH FLOP/s vs problem size and precision —
// 256 / 864 / 1024 KS orbitals in FP32, plus FP64 and hybrid FP32/BF16
// rows for the largest size.
//
// Measured here: FP32 and FP64 wall-clock throughput of the propagation
// hotspot (nlp_prop-dominated, as in the paper), and the *accuracy* of
// the hybrid FP32/BF16 nonlocal correction against the FP32 reference.
// The hybrid row's *throughput* is modeled: software-emulated BF16 is
// slower than FP32 on a CPU, so we report FP32 throughput scaled by the
// paper's measured BF16:FP32 systolic speedup (1.198x, Sec. VII.B), with
// the modeling called out in the output (DESIGN.md substitution rule).
//
// Expected shape: throughput grows with orbital count (arithmetic
// intensity); FP32 >= FP64; hybrid >= FP32 with negligible accuracy loss.

#include <cmath>
#include <cstdio>

#include "mlmd/common/cli.hpp"
#include "mlmd/common/flops.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/la/matrix.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/lfd/nlp_prop.hpp"
#include "mlmd/simd/simd.hpp"

namespace {

template <class Real>
double throughput_gflops(std::size_t n, std::size_t norb, int reps) {
  mlmd::grid::Grid3 g{n, n, n, 0.5, 0.5, 0.5};
  mlmd::lfd::SoAWave<Real> w(g, norb);
  mlmd::lfd::init_plane_waves(w);
  auto psi0 = w.psi;
  mlmd::lfd::KinParams kp;
  kp.dt = 0.04;

  mlmd::flops::Scope scope;
  mlmd::Timer t;
  for (int i = 0; i < reps; ++i) {
    mlmd::lfd::kin_prop(w, kp);
    mlmd::lfd::nlp_prop(w, psi0, std::complex<double>(0.0, -0.001));
  }
  return static_cast<double>(scope.flops()) / t.seconds() / 1e9;
}

double bf16_accuracy(std::size_t n, std::size_t norb) {
  mlmd::grid::Grid3 g{n, n, n, 0.5, 0.5, 0.5};
  mlmd::lfd::SoAWave<float> wf(g, norb), wb(g, norb);
  mlmd::lfd::init_plane_waves(wf);
  wb.psi = wf.psi;
  auto psi0 = wf.psi;
  mlmd::lfd::nlp_prop(wf, psi0, std::complex<double>(0.0, -0.01),
                      mlmd::la::ComputeMode::kNative);
  mlmd::lfd::nlp_prop(wb, psi0, std::complex<double>(0.0, -0.01),
                      mlmd::la::ComputeMode::kBF16);
  return mlmd::la::max_abs_diff(wb.psi, wf.psi);
}

} // namespace

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  try {
    simd::set_target(
        cli.choice("simd", simd::kTargetChoices, simd::active_target()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("# simd target: %s\n", simd::target_name(simd::active_target()));
  const bool paper = cli.flag("paper");
  // Paper sizes need ~GBs and hours in software; defaults are scaled so
  // the arithmetic-intensity trend is visible in seconds.
  const std::size_t n = paper ? 24 : static_cast<std::size_t>(cli.integer("n", 12));
  std::vector<std::size_t> orbs = paper
                                      ? std::vector<std::size_t>{256, 864, 1024}
                                      : std::vector<std::size_t>{64, 160, 256};
  const int reps = static_cast<int>(cli.integer("reps", 3));
  const double bf16_systolic_speedup = 1.198; // paper Sec. VII.B: 19.8%

  std::printf("# Table IV: DC-MESH propagation throughput vs orbitals & "
              "precision (%zu^3 grid)\n", n);
  std::printf("%-12s %-22s %-12s\n", "KS orbitals", "GFLOP/s", "note");

  double last_fp32 = 0.0;
  for (std::size_t norb : orbs) {
    last_fp32 = throughput_gflops<float>(n, norb, reps);
    std::printf("%-12zu %-22.2f %-12s\n", norb, last_fp32, "(FP32)");
  }
  const std::size_t big = orbs.back();
  const double hybrid = last_fp32 * bf16_systolic_speedup;
  std::printf("%-12zu %-22.2f %-12s\n", big, hybrid,
              "(FP32/BF16, modeled)");
  const double fp64 = throughput_gflops<double>(n, big, reps);
  std::printf("%-12zu %-22.2f %-12s\n", big, fp64, "(FP64)");

  const double acc = bf16_accuracy(n, big);
  std::printf("# hybrid FP32/BF16 accuracy: max wavefunction deviation %.2e "
              "(measured, one nlp_prop)\n", acc);
  std::printf("# hybrid throughput row modeled as FP32 x %.3f (paper's "
              "measured systolic BF16 gain); see DESIGN.md\n",
              bf16_systolic_speedup);
  std::printf("# paper reference (PVC tile): 5.22/9.74/14.98 (FP32) -> 17.95 "
              "(FP32/BF16) vs 7.69 (FP64) TFLOP/s\n");
  std::printf("# shape check: rising with orbitals %s, FP32>=FP64 %s\n",
              "(see rows above)", last_fp32 >= fp64 ? "OK" : "VIOLATED");
  return 0;
}
