#pragma once
// Minimal perf-record emitter shared by the Table benches (--json=<path>):
// writes an array of {kernel, gflops, bytes_alloc, seconds} objects, one
// per measured kernel. `bytes_alloc` is the number of bytes the Workspace
// arena reserved during the final (steady-state) repetition — the
// zero-allocation contract makes this 0 after warm-up, and the JSON trail
// lets CI catch regressions in either throughput or allocation behavior.

#include <cstdio>
#include <string>
#include <vector>

namespace mlmd::benchjson {

struct Record {
  std::string kernel;
  double gflops = 0.0;
  unsigned long long bytes_alloc = 0;
  double seconds = 0.0;
};

inline bool write(const std::string& path, const std::vector<Record>& recs) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  std::fprintf(fp, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        fp,
        "  {\"kernel\": \"%s\", \"gflops\": %.6g, \"bytes_alloc\": %llu, "
        "\"seconds\": %.6g}%s\n",
        r.kernel.c_str(), r.gflops, r.bytes_alloc, r.seconds,
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(fp, "]\n");
  std::fclose(fp);
  return true;
}

} // namespace mlmd::benchjson
