#pragma once
// Minimal perf-record emitter shared by the Table benches (--json=<path>).
//
// Schema v2 (see DESIGN.md Sec. 9): a top-level object
//
//   {"schema_version": 2, "records": [ {...}, ... ]}
//
// with one record per measured kernel carrying
//   kernel       measured kernel/model name
//   gflops       sustained throughput of the best repetition
//   bytes_alloc  Workspace bytes reserved during the final repetition —
//                the zero-allocation contract makes this 0 after warm-up
//   seconds      best-repetition wall time
//   comm_bytes   SimComm payload bytes the measurement moved (obs
//                registry delta; 0 for single-rank kernels)
//   comm_seconds SimComm blocked-wait seconds over the measurement
//   span_count   tracer spans recorded while measuring (0 when tracing
//                is disabled)
// The comm_* keys map onto the mlmd::perf machine-model inputs: the
// measured bytes play the role of the model's per-step communication
// volume, the wait seconds its latency/bandwidth term.

#include <cstdio>
#include <string>
#include <vector>

namespace mlmd::benchjson {

inline constexpr int kSchemaVersion = 2;

struct Record {
  std::string kernel;
  double gflops = 0.0;
  unsigned long long bytes_alloc = 0;
  double seconds = 0.0;
  unsigned long long comm_bytes = 0;
  double comm_seconds = 0.0;
  unsigned long long span_count = 0;
};

inline bool write(const std::string& path, const std::vector<Record>& recs) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  std::fprintf(fp, "{\"schema_version\": %d, \"records\": [\n", kSchemaVersion);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        fp,
        "  {\"kernel\": \"%s\", \"gflops\": %.6g, \"bytes_alloc\": %llu, "
        "\"seconds\": %.6g, \"comm_bytes\": %llu, \"comm_seconds\": %.6g, "
        "\"span_count\": %llu}%s\n",
        r.kernel.c_str(), r.gflops, r.bytes_alloc, r.seconds, r.comm_bytes,
        r.comm_seconds, r.span_count, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(fp, "]}\n");
  std::fclose(fp);
  return true;
}

} // namespace mlmd::benchjson
