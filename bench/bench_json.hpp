#pragma once
// Minimal perf-record emitter shared by the Table benches (--json=<path>).
//
// Schema v2 (see DESIGN.md Sec. 9): a top-level object
//
//   {"schema_version": 2, "records": [ {...}, ... ]}
//
// with one record per measured kernel carrying
//   kernel       measured kernel/model name
//   gflops       sustained throughput of the best repetition
//   bytes_alloc  Workspace bytes reserved during the final repetition —
//                the zero-allocation contract makes this 0 after warm-up
//   seconds      best-repetition wall time
//   comm_bytes   SimComm payload bytes the measurement moved (obs
//                registry delta; 0 for single-rank kernels)
//   comm_seconds SimComm blocked-wait seconds over the measurement
//   comm_overlap_seconds
//                communication hidden behind compute: summed post->wait
//                spans of the nonblocking handles (0 under --comm=sync)
//   handles_posted / handles_completed
//                nonblocking CommHandles created / waited during the
//                measurement; equal counts are the handle-leak invariant
//                trace_check enforces
//   span_count   tracer spans recorded while measuring (0 when tracing
//                is disabled)
// The comm_* keys map onto the mlmd::perf machine-model inputs: the
// measured bytes play the role of the model's per-step communication
// volume, the wait seconds its latency/bandwidth term, and the overlap
// seconds the fraction of it hidden by interior compute.
//
// When the measurement ran over a SimComm transport the object carries
// an optional top-level "transport" string ("inproc" or "shm", DESIGN.md
// Sec. 11) identifying the backend, so scaling points measured over real
// process boundaries are distinguishable from threaded ones, and an
// optional top-level "comm" string ("sync" or "async") recording the
// stepping-loop communication mode (results are bit-identical across
// modes; only wait/overlap seconds move).
//
// Every file additionally carries an optional "machine" block
//
//   "machine": {"simd": "<scalar|avx2|avx512>", "cpu_flags": ["avx2", ...]}
//
// recording the resolved mlmd::simd dispatch target (DESIGN.md Sec. 12)
// and the cpuid feature flags of the measuring host, so a recorded number
// can always be traced back to the micro-kernel ISA that produced it.
//
// When the measured run exercised the fault-tolerance layer (DESIGN.md
// Sec. 10) the object additionally carries an optional "ft" block
//
//   "ft": {"faults_injected": N, "faults_detected": N,
//          "faults_recovered": N, "checkpoint_writes": N,
//          "checkpoint_bytes": N, "checkpoint_seconds": S}
//
// sourced from the mlmd::obs registry; it is omitted entirely on
// zero-fault runs so existing schema-v2 consumers are unaffected.
//
// Serving-load measurements (bench_serve_load, DESIGN.md Sec. 14) add an
// optional "serve" block
//
//   "serve": {"mode": "closed", "tenants": N, "sessions": N,
//             "offered_rps": R, "sustained_rps": R,
//             "sustained_rps_batch1": R, "batch_speedup": X,
//             "latency_p50_s": S, "latency_p95_s": S, "latency_p99_s": S,
//             "batch_occupancy_mean": X, "completed": N, "rejected": N}
//
// recording offered vs. sustained scenario throughput, client-observed
// latency percentiles, and the cross-request batching speedup (sustained
// throughput vs. the same load served with batch size 1). Omitted unless
// the bench actually served traffic.
//
// Runs that exercised the liveness layer (DESIGN.md Sec. 15) add an
// optional "liveness" block
//
//   "liveness": {"deadline_hits": N, "sheds": N, "stall_detections": N,
//                "drained": N, "drain_seconds": S}
//
// sourced from the serve.deadline.hits / serve.shed /
// simcomm.stalls.detected / serve.drained / serve.drain.seconds
// instruments; omitted entirely when no deadline fired, nothing was
// shed, no stall was detected and no drain ran, so plain-throughput
// files are byte-stable against pre-liveness consumers.

#include <cstdio>
#include <string>
#include <vector>

#include "mlmd/obs/metrics.hpp"
#include "mlmd/simd/simd.hpp"

namespace mlmd::benchjson {

inline constexpr int kSchemaVersion = 2;

struct Record {
  std::string kernel;
  double gflops = 0.0;
  unsigned long long bytes_alloc = 0;
  double seconds = 0.0;
  unsigned long long comm_bytes = 0;
  double comm_seconds = 0.0;
  double comm_overlap_seconds = 0.0;
  unsigned long long handles_posted = 0;
  unsigned long long handles_completed = 0;
  unsigned long long span_count = 0;
};

/// Fault-tolerance totals for the optional "ft" block.
struct FtStats {
  unsigned long long faults_injected = 0;
  unsigned long long faults_detected = 0;
  unsigned long long faults_recovered = 0;
  unsigned long long checkpoint_writes = 0;
  unsigned long long checkpoint_bytes = 0;
  double checkpoint_seconds = 0.0;

  bool any() const {
    return faults_injected || faults_detected || faults_recovered ||
           checkpoint_writes || checkpoint_bytes || checkpoint_seconds > 0.0;
  }
};

/// Serving-load totals for the optional "serve" block.
struct ServeStats {
  std::string mode = "closed"; ///< "closed" | "open"
  unsigned long long tenants = 0;
  unsigned long long sessions = 0;
  double offered_rps = 0.0;
  double sustained_rps = 0.0;
  double sustained_rps_batch1 = 0.0;
  double batch_speedup = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double batch_occupancy_mean = 0.0;
  unsigned long long completed = 0;
  unsigned long long rejected = 0;

  bool any() const { return sessions != 0; }
};

/// Liveness totals for the optional "liveness" block (DESIGN.md Sec. 15).
struct LivenessStats {
  unsigned long long deadline_hits = 0;
  unsigned long long sheds = 0;
  unsigned long long stall_detections = 0;
  unsigned long long drained = 0;
  double drain_seconds = 0.0;

  bool any() const {
    return deadline_hits || sheds || stall_detections || drained ||
           drain_seconds > 0.0;
  }
};

/// Snapshot the process-global ft.* instruments. counter()/histogram()
/// get-or-register, so this is safe even when the ft layer never ran.
inline FtStats ft_stats_from_registry() {
  auto& reg = obs::Registry::global();
  FtStats s;
  s.faults_injected = reg.counter("ft.faults.injected").value();
  s.faults_detected = reg.counter("ft.faults.detected").value();
  s.faults_recovered = reg.counter("ft.faults.recovered").value();
  s.checkpoint_writes = reg.counter("ft.checkpoint.writes").value();
  s.checkpoint_bytes = reg.counter("ft.checkpoint.bytes").value();
  s.checkpoint_seconds = reg.histogram("ft.checkpoint.seconds").sum();
  return s;
}

/// Snapshot the process-global liveness instruments (DESIGN.md Sec. 15).
/// Like ft_stats_from_registry, get-or-register makes this safe when the
/// serve/transport liveness machinery never fired.
inline LivenessStats liveness_stats_from_registry() {
  auto& reg = obs::Registry::global();
  LivenessStats s;
  s.deadline_hits = reg.counter("serve.deadline.hits").value();
  s.sheds = reg.counter("serve.shed").value();
  s.stall_detections = reg.counter("simcomm.stalls.detected").value();
  s.drained = reg.counter("serve.drained").value();
  s.drain_seconds = reg.histogram("serve.drain.seconds").sum();
  return s;
}

inline bool write(const std::string& path, const std::vector<Record>& recs,
                  const FtStats* ft = nullptr,
                  const std::string& transport = "",
                  const std::string& comm_mode = "",
                  const ServeStats* serve = nullptr,
                  const LivenessStats* liveness = nullptr) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  std::fprintf(fp, "{\"schema_version\": %d, ", kSchemaVersion);
  std::fprintf(fp, "\"machine\": {\"simd\": \"%s\", \"cpu_flags\": [",
               simd::target_name(simd::active_target()));
  const auto flags = simd::caps_strings();
  for (std::size_t i = 0; i < flags.size(); ++i)
    std::fprintf(fp, "%s\"%s\"", i ? ", " : "", flags[i].c_str());
  std::fprintf(fp, "]}, ");
  if (!transport.empty())
    std::fprintf(fp, "\"transport\": \"%s\", ", transport.c_str());
  if (!comm_mode.empty())
    std::fprintf(fp, "\"comm\": \"%s\", ", comm_mode.c_str());
  std::fprintf(fp, "\"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        fp,
        "  {\"kernel\": \"%s\", \"gflops\": %.6g, \"bytes_alloc\": %llu, "
        "\"seconds\": %.6g, \"comm_bytes\": %llu, \"comm_seconds\": %.6g, "
        "\"comm_overlap_seconds\": %.6g, \"handles_posted\": %llu, "
        "\"handles_completed\": %llu, \"span_count\": %llu}%s\n",
        r.kernel.c_str(), r.gflops, r.bytes_alloc, r.seconds, r.comm_bytes,
        r.comm_seconds, r.comm_overlap_seconds, r.handles_posted,
        r.handles_completed, r.span_count, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(fp, "]");
  if (ft && ft->any()) {
    std::fprintf(fp,
                 ",\n\"ft\": {\"faults_injected\": %llu, "
                 "\"faults_detected\": %llu, \"faults_recovered\": %llu, "
                 "\"checkpoint_writes\": %llu, \"checkpoint_bytes\": %llu, "
                 "\"checkpoint_seconds\": %.6g}",
                 ft->faults_injected, ft->faults_detected, ft->faults_recovered,
                 ft->checkpoint_writes, ft->checkpoint_bytes,
                 ft->checkpoint_seconds);
  }
  if (serve && serve->any()) {
    std::fprintf(
        fp,
        ",\n\"serve\": {\"mode\": \"%s\", \"tenants\": %llu, "
        "\"sessions\": %llu, \"offered_rps\": %.6g, "
        "\"sustained_rps\": %.6g, \"sustained_rps_batch1\": %.6g, "
        "\"batch_speedup\": %.6g, \"latency_p50_s\": %.6g, "
        "\"latency_p95_s\": %.6g, \"latency_p99_s\": %.6g, "
        "\"batch_occupancy_mean\": %.6g, \"completed\": %llu, "
        "\"rejected\": %llu}",
        serve->mode.c_str(), serve->tenants, serve->sessions,
        serve->offered_rps, serve->sustained_rps, serve->sustained_rps_batch1,
        serve->batch_speedup, serve->latency_p50_s, serve->latency_p95_s,
        serve->latency_p99_s, serve->batch_occupancy_mean, serve->completed,
        serve->rejected);
  }
  if (liveness && liveness->any()) {
    std::fprintf(fp,
                 ",\n\"liveness\": {\"deadline_hits\": %llu, \"sheds\": %llu, "
                 "\"stall_detections\": %llu, \"drained\": %llu, "
                 "\"drain_seconds\": %.6g}",
                 liveness->deadline_hits, liveness->sheds,
                 liveness->stall_detections, liveness->drained,
                 liveness->drain_seconds);
  }
  std::fprintf(fp, "}\n");
  std::fclose(fp);
  return true;
}

} // namespace mlmd::benchjson
