// trace_check — validator for the two JSON artifacts the benches emit
// (ctest -L benchsmoke / -L obs):
//
//   trace_check <file.json>
//
// * A Chrome trace-event file (what --trace=/MLMD_TRACE writes) must be a
//   top-level ARRAY of complete events: every element an object with a
//   string "name", "ph" == "X", numeric "ts"/"dur"/"pid"/"tid". That is
//   exactly the shape chrome://tracing and Perfetto accept.
// * A bench --json file (benchjson schema v2) must be an OBJECT with an
//   integer "schema_version" and a "records" array whose elements carry
//   kernel/gflops/bytes_alloc/seconds/comm_bytes/comm_seconds/
//   comm_overlap_seconds/handles_posted/handles_completed/span_count.
//   Per record, handles_completed must equal handles_posted (no leaked
//   nonblocking CommHandles) and comm_overlap_seconds must be >= 0.
//   An optional "ft" object (fault-tolerance totals, DESIGN.md Sec. 10)
//   must, when present, carry numeric faults_injected/faults_detected/
//   faults_recovered/checkpoint_writes/checkpoint_bytes/
//   checkpoint_seconds with detected >= recovered and non-negative
//   values. An optional "liveness" object (DESIGN.md Sec. 15) must carry
//   numeric deadline_hits/sheds/stall_detections/drained/drain_seconds,
//   all non-negative, with drain_seconds > 0 implying drained > 0.
//
// The file kind is detected from the top-level value. Exit 0 on a valid
// file (a one-line summary is printed), 1 on any structural violation.
// The parser is a self-contained recursive-descent JSON reader — no
// third-party dependency, which is the point: it proves the emitters
// produce well-formed JSON without trusting the emitters' own printf.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;
};

class Parser {
public:
  Parser(const char* s, std::size_t n) : p_(s), end_(s + n) {}

  ValuePtr parse() {
    auto v = value();
    skip_ws();
    if (p_ != end_) fail("trailing data after top-level value");
    return v;
  }

  bool ok() const { return err_.empty(); }
  const std::string& error() const { return err_; }

private:
  [[noreturn]] void fail(const std::string& why) {
    err_ = why;
    throw std::string(why);
  }
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  char peek() {
    skip_ws();
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  ValuePtr value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++p_;
      return v;
    }
    while (true) {
      auto key = string_value();
      expect(':');
      v->obj.emplace(key->str, value());
      const char c = peek();
      if (c == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++p_;
      return v;
    }
    while (true) {
      v->arr.push_back(value());
      const char c = peek();
      if (c == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  ValuePtr string_value() {
    expect('"');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kString;
    while (true) {
      if (p_ == end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return v;
      if (c == '\\') {
        if (p_ == end_) fail("bad escape");
        const char e = *p_++;
        switch (e) {
          case '"': v->str += '"'; break;
          case '\\': v->str += '\\'; break;
          case '/': v->str += '/'; break;
          case 'n': v->str += '\n'; break;
          case 't': v->str += '\t'; break;
          case 'r': v->str += '\r'; break;
          case 'b': v->str += '\b'; break;
          case 'f': v->str += '\f'; break;
          case 'u': {
            // \uXXXX: validate hex, keep the raw escape (names are ASCII).
            for (int i = 0; i < 4; ++i) {
              if (p_ == end_ ||
                  !std::isxdigit(static_cast<unsigned char>(*p_)))
                fail("bad \\u escape");
              ++p_;
            }
            v->str += '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v->str += c;
      }
    }
  }

  ValuePtr boolean() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kBool;
    if (end_ - p_ >= 4 && std::string(p_, p_ + 4) == "true") {
      v->b = true;
      p_ += 4;
    } else if (end_ - p_ >= 5 && std::string(p_, p_ + 5) == "false") {
      v->b = false;
      p_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  ValuePtr null() {
    if (end_ - p_ < 4 || std::string(p_, p_ + 4) != "null") fail("bad literal");
    p_ += 4;
    return std::make_unique<Value>();
  }

  ValuePtr number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    if (!digits) fail("bad number");
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kNumber;
    v->num = std::strtod(std::string(start, p_).c_str(), nullptr);
    return v;
  }

  const char* p_;
  const char* end_;
  std::string err_;
};

const Value* field(const Value& obj, const char* key, Value::Kind kind) {
  auto it = obj.obj.find(key);
  if (it == obj.obj.end() || it->second->kind != kind) return nullptr;
  return it->second.get();
}

int check_trace(const Value& root) {
  double total_us = 0.0;
  for (std::size_t i = 0; i < root.arr.size(); ++i) {
    const Value& ev = *root.arr[i];
    if (ev.kind != Value::Kind::kObject) {
      std::fprintf(stderr, "trace_check: event %zu is not an object\n", i);
      return 1;
    }
    const Value* ph = field(ev, "ph", Value::Kind::kString);
    if (!field(ev, "name", Value::Kind::kString) || !ph || ph->str != "X" ||
        !field(ev, "ts", Value::Kind::kNumber) ||
        !field(ev, "dur", Value::Kind::kNumber) ||
        !field(ev, "pid", Value::Kind::kNumber) ||
        !field(ev, "tid", Value::Kind::kNumber)) {
      std::fprintf(stderr,
                   "trace_check: event %zu lacks a complete-event shape "
                   "(name/ph=X/ts/dur/pid/tid)\n",
                   i);
      return 1;
    }
    total_us += field(ev, "dur", Value::Kind::kNumber)->num;
  }
  std::printf("trace_check: OK, %zu complete events, %.3f ms total span time\n",
              root.arr.size(), total_us / 1e3);
  return 0;
}

int check_bench(const Value& root) {
  const Value* ver = field(root, "schema_version", Value::Kind::kNumber);
  const Value* recs = field(root, "records", Value::Kind::kArray);
  if (!ver || !recs) {
    std::fprintf(stderr,
                 "trace_check: bench JSON lacks schema_version/records\n");
    return 1;
  }
  static const char* num_keys[] = {"gflops",
                                   "bytes_alloc",
                                   "seconds",
                                   "comm_bytes",
                                   "comm_seconds",
                                   "comm_overlap_seconds",
                                   "handles_posted",
                                   "handles_completed",
                                   "span_count"};
  for (std::size_t i = 0; i < recs->arr.size(); ++i) {
    const Value& r = *recs->arr[i];
    if (r.kind != Value::Kind::kObject ||
        !field(r, "kernel", Value::Kind::kString)) {
      std::fprintf(stderr, "trace_check: record %zu lacks kernel name\n", i);
      return 1;
    }
    for (const char* k : num_keys)
      if (!field(r, k, Value::Kind::kNumber)) {
        std::fprintf(stderr, "trace_check: record %zu lacks numeric %s\n", i,
                     k);
        return 1;
      }
    // Handle-leak invariant: every nonblocking handle a rank posted must
    // have been completed by the time the record was sampled (a dropped
    // CommHandle silently discards its payload), and the overlap account
    // can never be negative.
    const double posted = field(r, "handles_posted",
                                Value::Kind::kNumber)->num;
    const double completed = field(r, "handles_completed",
                                   Value::Kind::kNumber)->num;
    if (posted != completed) {
      std::fprintf(stderr,
                   "trace_check: record %zu leaks comm handles: %g posted, "
                   "%g completed\n",
                   i, posted, completed);
      return 1;
    }
    if (field(r, "comm_overlap_seconds", Value::Kind::kNumber)->num < 0.0) {
      std::fprintf(stderr,
                   "trace_check: record %zu has negative "
                   "comm_overlap_seconds\n",
                   i);
      return 1;
    }
  }

  // Optional machine block (DESIGN.md Sec. 12): when present it must name
  // a known simd dispatch target and carry a cpu_flags array of strings,
  // so recorded numbers stay attributable to the kernel ISA that produced
  // them.
  std::string simd_target;
  if (root.obj.count("machine")) {
    const Value* m = field(root, "machine", Value::Kind::kObject);
    if (!m) {
      std::fprintf(stderr, "trace_check: \"machine\" is not an object\n");
      return 1;
    }
    const Value* s = field(*m, "simd", Value::Kind::kString);
    if (!s || (s->str != "scalar" && s->str != "avx2" && s->str != "avx512")) {
      std::fprintf(stderr,
                   "trace_check: machine.simd must be \"scalar\", \"avx2\" "
                   "or \"avx512\"\n");
      return 1;
    }
    const Value* fl = field(*m, "cpu_flags", Value::Kind::kArray);
    if (!fl) {
      std::fprintf(stderr,
                   "trace_check: machine block lacks cpu_flags array\n");
      return 1;
    }
    for (std::size_t i = 0; i < fl->arr.size(); ++i)
      if (fl->arr[i]->kind != Value::Kind::kString) {
        std::fprintf(stderr,
                     "trace_check: machine.cpu_flags[%zu] is not a string\n",
                     i);
        return 1;
      }
    simd_target = s->str;
  }

  // Optional transport tag (DESIGN.md Sec. 11): when present it must be
  // one of the SimComm backend names, so downstream scaling plots can
  // trust the measured-over-processes distinction.
  std::string transport;
  if (root.obj.count("transport")) {
    const Value* t = field(root, "transport", Value::Kind::kString);
    if (!t || (t->str != "inproc" && t->str != "shm")) {
      std::fprintf(stderr,
                   "trace_check: \"transport\" must be \"inproc\" or "
                   "\"shm\"\n");
      return 1;
    }
    transport = t->str;
  }

  // Optional comm-mode tag: "sync" or "async" stepping-loop communication
  // (results must be bit-identical across modes; trace_check
  // --compare-comm proves the traffic is too).
  std::string comm_mode;
  if (root.obj.count("comm")) {
    const Value* c = field(root, "comm", Value::Kind::kString);
    if (!c || (c->str != "sync" && c->str != "async")) {
      std::fprintf(stderr,
                   "trace_check: \"comm\" must be \"sync\" or \"async\"\n");
      return 1;
    }
    comm_mode = c->str;
  }

  // Optional fault-tolerance block: validated only when the emitter
  // decided the run exercised the ft layer.
  bool have_ft = false;
  if (root.obj.count("ft")) {
    const Value* ft = field(root, "ft", Value::Kind::kObject);
    if (!ft) {
      std::fprintf(stderr, "trace_check: \"ft\" is not an object\n");
      return 1;
    }
    static const char* ft_keys[] = {"faults_injected",   "faults_detected",
                                    "faults_recovered",  "checkpoint_writes",
                                    "checkpoint_bytes",  "checkpoint_seconds"};
    for (const char* k : ft_keys) {
      const Value* v = field(*ft, k, Value::Kind::kNumber);
      if (!v) {
        std::fprintf(stderr, "trace_check: ft block lacks numeric %s\n", k);
        return 1;
      }
      if (v->num < 0.0) {
        std::fprintf(stderr, "trace_check: ft.%s is negative\n", k);
        return 1;
      }
    }
    const double detected = field(*ft, "faults_detected",
                                  Value::Kind::kNumber)->num;
    const double recovered = field(*ft, "faults_recovered",
                                   Value::Kind::kNumber)->num;
    if (recovered > detected) {
      std::fprintf(stderr,
                   "trace_check: ft.faults_recovered (%g) exceeds "
                   "ft.faults_detected (%g)\n",
                   recovered, detected);
      return 1;
    }
    have_ft = true;
  }

  // Optional serving-load block (DESIGN.md Sec. 14): numeric throughput /
  // latency / occupancy fields, a known mode tag, and ordered latency
  // percentiles (p50 <= p95 <= p99 — a broken quantile estimator or a
  // mislabeled lane fails loudly here).
  bool have_serve = false;
  if (root.obj.count("serve")) {
    const Value* sv = field(root, "serve", Value::Kind::kObject);
    if (!sv) {
      std::fprintf(stderr, "trace_check: \"serve\" is not an object\n");
      return 1;
    }
    const Value* mode = field(*sv, "mode", Value::Kind::kString);
    if (!mode || (mode->str != "closed" && mode->str != "open")) {
      std::fprintf(stderr,
                   "trace_check: serve.mode must be \"closed\" or \"open\"\n");
      return 1;
    }
    static const char* serve_keys[] = {
        "tenants",        "sessions",     "offered_rps",
        "sustained_rps",  "sustained_rps_batch1",
        "batch_speedup",  "latency_p50_s", "latency_p95_s",
        "latency_p99_s",  "batch_occupancy_mean",
        "completed",      "rejected"};
    for (const char* k : serve_keys) {
      const Value* v = field(*sv, k, Value::Kind::kNumber);
      if (!v) {
        std::fprintf(stderr, "trace_check: serve block lacks numeric %s\n", k);
        return 1;
      }
      if (v->num < 0.0) {
        std::fprintf(stderr, "trace_check: serve.%s is negative\n", k);
        return 1;
      }
    }
    const double p50 = field(*sv, "latency_p50_s", Value::Kind::kNumber)->num;
    const double p95 = field(*sv, "latency_p95_s", Value::Kind::kNumber)->num;
    const double p99 = field(*sv, "latency_p99_s", Value::Kind::kNumber)->num;
    if (p50 > p95 || p95 > p99) {
      std::fprintf(stderr,
                   "trace_check: serve latency percentiles out of order "
                   "(p50 %g, p95 %g, p99 %g)\n",
                   p50, p95, p99);
      return 1;
    }
    const double sessions = field(*sv, "sessions", Value::Kind::kNumber)->num;
    const double completed = field(*sv, "completed",
                                   Value::Kind::kNumber)->num;
    if (completed > sessions) {
      std::fprintf(stderr,
                   "trace_check: serve.completed (%g) exceeds "
                   "serve.sessions (%g)\n",
                   completed, sessions);
      return 1;
    }
    have_serve = true;
  }

  // Optional liveness block (DESIGN.md Sec. 15): deadline hits, sheds,
  // stall detections and drain totals must all be numeric and
  // non-negative; emitters omit the block entirely on fully-live runs.
  bool have_liveness = false;
  if (root.obj.count("liveness")) {
    const Value* lv = field(root, "liveness", Value::Kind::kObject);
    if (!lv) {
      std::fprintf(stderr, "trace_check: \"liveness\" is not an object\n");
      return 1;
    }
    static const char* lv_keys[] = {"deadline_hits", "sheds",
                                    "stall_detections", "drained",
                                    "drain_seconds"};
    for (const char* k : lv_keys) {
      const Value* v = field(*lv, k, Value::Kind::kNumber);
      if (!v) {
        std::fprintf(stderr, "trace_check: liveness block lacks numeric %s\n",
                     k);
        return 1;
      }
      if (v->num < 0.0) {
        std::fprintf(stderr, "trace_check: liveness.%s is negative\n", k);
        return 1;
      }
    }
    // A drain that took time must have drained at least one session —
    // nonzero drain_seconds with drained == 0 means a mislabeled lane.
    const double drained = field(*lv, "drained", Value::Kind::kNumber)->num;
    const double drain_s = field(*lv, "drain_seconds",
                                 Value::Kind::kNumber)->num;
    if (drain_s > 0.0 && drained == 0.0) {
      std::fprintf(stderr,
                   "trace_check: liveness.drain_seconds (%g) nonzero with "
                   "zero drained sessions\n",
                   drain_s);
      return 1;
    }
    have_liveness = true;
  }

  std::printf(
      "trace_check: OK, bench schema v%d, %zu records%s%s%s%s%s%s%s%s%s\n",
      static_cast<int>(ver->num), recs->arr.size(),
      simd_target.empty() ? "" : ", simd ", simd_target.c_str(),
      transport.empty() ? "" : ", transport ", transport.c_str(),
      comm_mode.empty() ? "" : ", comm ", comm_mode.c_str(),
      have_ft ? ", ft block present" : "",
      have_serve ? ", serve block present" : "",
      have_liveness ? ", liveness block present" : "");
  return 0;
}

ValuePtr parse_file(const char* path) {
  std::FILE* fp = std::fopen(path, "rb");
  if (!fp) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path);
    return nullptr;
  }
  std::string buf;
  char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, fp)) > 0)
    buf.append(chunk, got);
  std::fclose(fp);
  try {
    Parser p(buf.data(), buf.size());
    return p.parse();
  } catch (const std::string& err) {
    std::fprintf(stderr, "trace_check: %s: invalid JSON: %s\n", path,
                 err.c_str());
    return nullptr;
  }
}

/// --compare-comm a.json b.json: both must be valid bench files with the
/// same kernel set and bit-equal comm_bytes per kernel. This is how CI
/// proves the shm and inproc transports — and the sync and async comm
/// modes — move identical traffic for the same configuration (timings,
/// overlap seconds, and handle counts are allowed to differ).
int compare_comm(const char* path_a, const char* path_b) {
  ValuePtr a = parse_file(path_a);
  ValuePtr b = parse_file(path_b);
  if (!a || !b) return 1;
  if (a->kind != Value::Kind::kObject || b->kind != Value::Kind::kObject ||
      check_bench(*a) != 0 || check_bench(*b) != 0)
    return 1;
  auto comm_map = [](const Value& root) {
    std::map<std::string, double> m;
    const Value* recs = field(root, "records", Value::Kind::kArray);
    for (const auto& r : recs->arr)
      m[field(*r, "kernel", Value::Kind::kString)->str] =
          field(*r, "comm_bytes", Value::Kind::kNumber)->num;
    return m;
  };
  const auto ma = comm_map(*a);
  const auto mb = comm_map(*b);
  int bad = 0;
  for (const auto& [kernel, bytes] : ma) {
    auto it = mb.find(kernel);
    if (it == mb.end()) {
      std::fprintf(stderr, "trace_check: kernel \"%s\" only in %s\n",
                   kernel.c_str(), path_a);
      ++bad;
    } else if (it->second != bytes) {
      std::fprintf(stderr,
                   "trace_check: kernel \"%s\" comm_bytes differ: %.0f vs "
                   "%.0f\n",
                   kernel.c_str(), bytes, it->second);
      ++bad;
    }
  }
  for (const auto& [kernel, bytes] : mb)
    if (!ma.count(kernel)) {
      std::fprintf(stderr, "trace_check: kernel \"%s\" only in %s\n",
                   kernel.c_str(), path_b);
      ++bad;
    }
  if (bad) return 1;
  std::printf("trace_check: OK, %zu kernels, per-kernel comm_bytes "
              "identical\n",
              ma.size());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--compare-comm")
    return compare_comm(argv[2], argv[3]);
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: trace_check <file.json>\n"
                 "       trace_check --compare-comm <a.json> <b.json>\n");
    return 1;
  }
  ValuePtr root = parse_file(argv[1]);
  if (!root) return 1;

  if (root->kind == Value::Kind::kArray) return check_trace(*root);
  if (root->kind == Value::Kind::kObject) return check_bench(*root);
  std::fprintf(stderr, "trace_check: top-level value is neither trace array "
                       "nor bench object\n");
  return 1;
}
