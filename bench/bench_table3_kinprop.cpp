// Table III reproduction: runtime of the kin_prop() local time-propagator
// across the optimization ladder — baseline (AoS) / data+loop re-ordering
// (SoA, Sec. V.B.2) / blocking-tiling (Sec. V.B.3) / hierarchical parallel
// regions (Sec. V.B.4).
//
// Paper parameters: 1,000 QD steps, 64 KS orbitals, 70x70x72 mesh. That
// workload takes minutes per variant on one core, so the default here is
// a scaled-down 200 steps on 32x32x32 with the same orbital count; pass
// --paper for the full Table III workload.
//
// Expected shape (paper: 1 / 3.67 / 9.22 / 338): each rung is faster than
// the previous; the parallel rung's gain tracks the core count (the
// paper's 338x came from a GPU; this host has OMP_NUM_THREADS cores).

#include <cstdio>

#include "mlmd/common/cli.hpp"
#include "mlmd/common/timer.hpp"
#include "mlmd/lfd/kin_prop.hpp"
#include "mlmd/simd/simd.hpp"

int main(int argc, char** argv) {
  using namespace mlmd;
  Cli cli(argc, argv);
  try {
    simd::set_target(
        cli.choice("simd", simd::kTargetChoices, simd::active_target()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("# simd target: %s\n", simd::target_name(simd::active_target()));
  const bool paper = cli.flag("paper");
  const std::size_t nx = paper ? 70 : static_cast<std::size_t>(cli.integer("n", 32));
  const std::size_t ny = nx;
  const std::size_t nz = paper ? 72 : nx;
  const std::size_t norb = static_cast<std::size_t>(cli.integer("norb", 64));
  const int steps = paper ? 1000 : static_cast<int>(cli.integer("steps", 200));

  grid::Grid3 g{nx, ny, nz, 0.5, 0.5, 0.5};
  lfd::KinParams kp;
  kp.dt = 0.04;
  kp.a[1] = 0.1; // nonzero vector potential: full Peierls path

  struct Row {
    const char* name;
    lfd::KinVariant variant;
  };
  const Row rows[] = {
      {"Baseline (AoS)", lfd::KinVariant::kBaseline},
      {"Data & loop re-ordering (B.2)", lfd::KinVariant::kReordered},
      {"Blocking/tiling (B.3)", lfd::KinVariant::kBlocked},
      {"Hierarchical parallel regions (B.4)", lfd::KinVariant::kParallel},
  };

  std::printf("# Table III: kin_prop() runtime, %d QD steps, %zu orbitals, "
              "%zux%zux%zu mesh (FP32)\n",
              steps, norb, nx, ny, nz);
  std::printf("%-38s %-12s %-10s\n", "Implementation", "Runtime(s)", "Speedup");

  double baseline_time = 0.0;
  for (const auto& row : rows) {
    lfd::SoAWave<float> w(g, norb);
    lfd::init_plane_waves(w);
    // For the AoS baseline, time the native AoS kernel without the
    // layout-conversion overhead of the shared entry point.
    Timer t;
    if (row.variant == lfd::KinVariant::kBaseline) {
      auto aos = lfd::to_aos(w);
      t.reset();
      for (int s = 0; s < steps; ++s) lfd::kin_prop_aos(aos, kp);
    } else {
      t.reset();
      for (int s = 0; s < steps; ++s) lfd::kin_prop(w, kp, row.variant);
    }
    const double secs = t.seconds();
    if (baseline_time == 0.0) baseline_time = secs;
    std::printf("%-38s %-12.3f %-10.2f\n", row.name, secs, baseline_time / secs);
  }
  std::printf("# paper reference (Polaris, CPU core vs A100): "
              "8.655 / 2.356 / 0.939 / 0.026 s -> 1 / 3.67 / 9.22 / 338\n");
  return 0;
}
