file(REMOVE_RECURSE
  "CMakeFiles/mlmd_run.dir/mlmd_run.cpp.o"
  "CMakeFiles/mlmd_run.dir/mlmd_run.cpp.o.d"
  "mlmd_run"
  "mlmd_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
