# Empty dependencies file for mlmd_run.
# This may be replaced when dependencies are built.
