file(REMOVE_RECURSE
  "CMakeFiles/nnqmd_md.dir/nnqmd_md.cpp.o"
  "CMakeFiles/nnqmd_md.dir/nnqmd_md.cpp.o.d"
  "nnqmd_md"
  "nnqmd_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nnqmd_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
