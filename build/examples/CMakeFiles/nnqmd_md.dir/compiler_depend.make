# Empty compiler generated dependencies file for nnqmd_md.
# This may be replaced when dependencies are built.
