file(REMOVE_RECURSE
  "CMakeFiles/train_allegro.dir/train_allegro.cpp.o"
  "CMakeFiles/train_allegro.dir/train_allegro.cpp.o.d"
  "train_allegro"
  "train_allegro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_allegro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
