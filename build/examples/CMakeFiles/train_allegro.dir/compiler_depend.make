# Empty compiler generated dependencies file for train_allegro.
# This may be replaced when dependencies are built.
