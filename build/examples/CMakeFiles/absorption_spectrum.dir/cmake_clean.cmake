file(REMOVE_RECURSE
  "CMakeFiles/absorption_spectrum.dir/absorption_spectrum.cpp.o"
  "CMakeFiles/absorption_spectrum.dir/absorption_spectrum.cpp.o.d"
  "absorption_spectrum"
  "absorption_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absorption_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
