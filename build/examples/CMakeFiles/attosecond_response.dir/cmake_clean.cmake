file(REMOVE_RECURSE
  "CMakeFiles/attosecond_response.dir/attosecond_response.cpp.o"
  "CMakeFiles/attosecond_response.dir/attosecond_response.cpp.o.d"
  "attosecond_response"
  "attosecond_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attosecond_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
