# Empty compiler generated dependencies file for attosecond_response.
# This may be replaced when dependencies are built.
