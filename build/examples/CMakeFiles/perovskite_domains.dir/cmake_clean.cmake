file(REMOVE_RECURSE
  "CMakeFiles/perovskite_domains.dir/perovskite_domains.cpp.o"
  "CMakeFiles/perovskite_domains.dir/perovskite_domains.cpp.o.d"
  "perovskite_domains"
  "perovskite_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perovskite_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
