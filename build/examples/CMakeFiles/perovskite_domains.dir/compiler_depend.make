# Empty compiler generated dependencies file for perovskite_domains.
# This may be replaced when dependencies are built.
