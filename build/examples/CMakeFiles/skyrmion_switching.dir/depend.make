# Empty dependencies file for skyrmion_switching.
# This may be replaced when dependencies are built.
