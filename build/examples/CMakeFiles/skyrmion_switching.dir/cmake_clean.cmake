file(REMOVE_RECURSE
  "CMakeFiles/skyrmion_switching.dir/skyrmion_switching.cpp.o"
  "CMakeFiles/skyrmion_switching.dir/skyrmion_switching.cpp.o.d"
  "skyrmion_switching"
  "skyrmion_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyrmion_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
