# Empty dependencies file for dc_scf_demo.
# This may be replaced when dependencies are built.
