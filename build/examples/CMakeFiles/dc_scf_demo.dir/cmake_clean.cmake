file(REMOVE_RECURSE
  "CMakeFiles/dc_scf_demo.dir/dc_scf_demo.cpp.o"
  "CMakeFiles/dc_scf_demo.dir/dc_scf_demo.cpp.o.d"
  "dc_scf_demo"
  "dc_scf_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_scf_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
