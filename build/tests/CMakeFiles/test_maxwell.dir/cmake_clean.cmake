file(REMOVE_RECURSE
  "CMakeFiles/test_maxwell.dir/test_maxwell.cpp.o"
  "CMakeFiles/test_maxwell.dir/test_maxwell.cpp.o.d"
  "test_maxwell"
  "test_maxwell.pdb"
  "test_maxwell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
