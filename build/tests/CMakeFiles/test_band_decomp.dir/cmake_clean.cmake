file(REMOVE_RECURSE
  "CMakeFiles/test_band_decomp.dir/test_band_decomp.cpp.o"
  "CMakeFiles/test_band_decomp.dir/test_band_decomp.cpp.o.d"
  "test_band_decomp"
  "test_band_decomp.pdb"
  "test_band_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_band_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
