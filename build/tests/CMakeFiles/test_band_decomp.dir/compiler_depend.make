# Empty compiler generated dependencies file for test_band_decomp.
# This may be replaced when dependencies are built.
