file(REMOVE_RECURSE
  "CMakeFiles/test_extensions5.dir/test_extensions5.cpp.o"
  "CMakeFiles/test_extensions5.dir/test_extensions5.cpp.o.d"
  "test_extensions5"
  "test_extensions5.pdb"
  "test_extensions5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
