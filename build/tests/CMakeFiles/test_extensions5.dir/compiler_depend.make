# Empty compiler generated dependencies file for test_extensions5.
# This may be replaced when dependencies are built.
