# Empty compiler generated dependencies file for test_qxmd.
# This may be replaced when dependencies are built.
