file(REMOVE_RECURSE
  "CMakeFiles/test_qxmd.dir/test_qxmd.cpp.o"
  "CMakeFiles/test_qxmd.dir/test_qxmd.cpp.o.d"
  "test_qxmd"
  "test_qxmd.pdb"
  "test_qxmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qxmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
