file(REMOVE_RECURSE
  "CMakeFiles/test_extensions4.dir/test_extensions4.cpp.o"
  "CMakeFiles/test_extensions4.dir/test_extensions4.cpp.o.d"
  "test_extensions4"
  "test_extensions4.pdb"
  "test_extensions4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
