# Empty dependencies file for test_extensions4.
# This may be replaced when dependencies are built.
