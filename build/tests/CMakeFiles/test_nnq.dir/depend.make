# Empty dependencies file for test_nnq.
# This may be replaced when dependencies are built.
