file(REMOVE_RECURSE
  "CMakeFiles/test_nnq.dir/test_nnq.cpp.o"
  "CMakeFiles/test_nnq.dir/test_nnq.cpp.o.d"
  "test_nnq"
  "test_nnq.pdb"
  "test_nnq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nnq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
