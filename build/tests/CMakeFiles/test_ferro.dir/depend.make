# Empty dependencies file for test_ferro.
# This may be replaced when dependencies are built.
