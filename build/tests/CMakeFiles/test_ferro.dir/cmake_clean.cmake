file(REMOVE_RECURSE
  "CMakeFiles/test_ferro.dir/test_ferro.cpp.o"
  "CMakeFiles/test_ferro.dir/test_ferro.cpp.o.d"
  "test_ferro"
  "test_ferro.pdb"
  "test_ferro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ferro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
