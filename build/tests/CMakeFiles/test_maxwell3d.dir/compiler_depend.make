# Empty compiler generated dependencies file for test_maxwell3d.
# This may be replaced when dependencies are built.
