file(REMOVE_RECURSE
  "CMakeFiles/test_maxwell3d.dir/test_maxwell3d.cpp.o"
  "CMakeFiles/test_maxwell3d.dir/test_maxwell3d.cpp.o.d"
  "test_maxwell3d"
  "test_maxwell3d.pdb"
  "test_maxwell3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxwell3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
