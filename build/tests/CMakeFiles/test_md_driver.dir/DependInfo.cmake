
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_md_driver.cpp" "tests/CMakeFiles/test_md_driver.dir/test_md_driver.cpp.o" "gcc" "tests/CMakeFiles/test_md_driver.dir/test_md_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_nnq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_ferro.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
