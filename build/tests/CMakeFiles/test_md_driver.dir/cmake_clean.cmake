file(REMOVE_RECURSE
  "CMakeFiles/test_md_driver.dir/test_md_driver.cpp.o"
  "CMakeFiles/test_md_driver.dir/test_md_driver.cpp.o.d"
  "test_md_driver"
  "test_md_driver.pdb"
  "test_md_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
