# Empty dependencies file for test_md_driver.
# This may be replaced when dependencies are built.
