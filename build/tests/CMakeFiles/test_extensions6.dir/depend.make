# Empty dependencies file for test_extensions6.
# This may be replaced when dependencies are built.
