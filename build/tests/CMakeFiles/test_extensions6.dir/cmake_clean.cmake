file(REMOVE_RECURSE
  "CMakeFiles/test_extensions6.dir/test_extensions6.cpp.o"
  "CMakeFiles/test_extensions6.dir/test_extensions6.cpp.o.d"
  "test_extensions6"
  "test_extensions6.pdb"
  "test_extensions6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
