file(REMOVE_RECURSE
  "CMakeFiles/test_lfd.dir/test_lfd.cpp.o"
  "CMakeFiles/test_lfd.dir/test_lfd.cpp.o.d"
  "test_lfd"
  "test_lfd.pdb"
  "test_lfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
