file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_switching.dir/bench_fig3_switching.cpp.o"
  "CMakeFiles/bench_fig3_switching.dir/bench_fig3_switching.cpp.o.d"
  "bench_fig3_switching"
  "bench_fig3_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
