# Empty dependencies file for bench_fig3_switching.
# This may be replaced when dependencies are built.
