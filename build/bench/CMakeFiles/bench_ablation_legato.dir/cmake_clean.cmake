file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_legato.dir/bench_ablation_legato.cpp.o"
  "CMakeFiles/bench_ablation_legato.dir/bench_ablation_legato.cpp.o.d"
  "bench_ablation_legato"
  "bench_ablation_legato.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_legato.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
