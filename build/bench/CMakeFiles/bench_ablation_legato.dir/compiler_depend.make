# Empty compiler generated dependencies file for bench_ablation_legato.
# This may be replaced when dependencies are built.
