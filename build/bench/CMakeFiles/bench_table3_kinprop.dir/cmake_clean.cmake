file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_kinprop.dir/bench_table3_kinprop.cpp.o"
  "CMakeFiles/bench_table3_kinprop.dir/bench_table3_kinprop.cpp.o.d"
  "bench_table3_kinprop"
  "bench_table3_kinprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_kinprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
