# Empty compiler generated dependencies file for bench_table2_xs_t2s.
# This may be replaced when dependencies are built.
