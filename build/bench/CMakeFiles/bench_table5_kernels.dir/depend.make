# Empty dependencies file for bench_table5_kernels.
# This may be replaced when dependencies are built.
