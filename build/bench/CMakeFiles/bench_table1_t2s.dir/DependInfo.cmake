
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_t2s.cpp" "bench/CMakeFiles/bench_table1_t2s.dir/bench_table1_t2s.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_t2s.dir/bench_table1_t2s.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_maxwell.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_par.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
