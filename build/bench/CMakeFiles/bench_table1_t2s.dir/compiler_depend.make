# Empty compiler generated dependencies file for bench_table1_t2s.
# This may be replaced when dependencies are built.
