# Empty dependencies file for bench_ablation_bf16.
# This may be replaced when dependencies are built.
