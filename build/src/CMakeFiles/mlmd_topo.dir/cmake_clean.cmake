file(REMOVE_RECURSE
  "CMakeFiles/mlmd_topo.dir/topo/polarization.cpp.o"
  "CMakeFiles/mlmd_topo.dir/topo/polarization.cpp.o.d"
  "CMakeFiles/mlmd_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/mlmd_topo.dir/topo/topology.cpp.o.d"
  "libmlmd_topo.a"
  "libmlmd_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
