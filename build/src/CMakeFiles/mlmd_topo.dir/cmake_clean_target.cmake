file(REMOVE_RECURSE
  "libmlmd_topo.a"
)
