# Empty compiler generated dependencies file for mlmd_topo.
# This may be replaced when dependencies are built.
