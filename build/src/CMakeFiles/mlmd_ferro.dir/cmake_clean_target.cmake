file(REMOVE_RECURSE
  "libmlmd_ferro.a"
)
