# Empty dependencies file for mlmd_ferro.
# This may be replaced when dependencies are built.
