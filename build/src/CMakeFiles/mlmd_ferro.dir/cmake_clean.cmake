file(REMOVE_RECURSE
  "CMakeFiles/mlmd_ferro.dir/ferro/io.cpp.o"
  "CMakeFiles/mlmd_ferro.dir/ferro/io.cpp.o.d"
  "CMakeFiles/mlmd_ferro.dir/ferro/lattice.cpp.o"
  "CMakeFiles/mlmd_ferro.dir/ferro/lattice.cpp.o.d"
  "libmlmd_ferro.a"
  "libmlmd_ferro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_ferro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
