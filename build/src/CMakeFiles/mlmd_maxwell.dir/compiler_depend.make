# Empty compiler generated dependencies file for mlmd_maxwell.
# This may be replaced when dependencies are built.
