file(REMOVE_RECURSE
  "libmlmd_maxwell.a"
)
