file(REMOVE_RECURSE
  "CMakeFiles/mlmd_maxwell.dir/maxwell/maxwell1d.cpp.o"
  "CMakeFiles/mlmd_maxwell.dir/maxwell/maxwell1d.cpp.o.d"
  "CMakeFiles/mlmd_maxwell.dir/maxwell/maxwell3d.cpp.o"
  "CMakeFiles/mlmd_maxwell.dir/maxwell/maxwell3d.cpp.o.d"
  "libmlmd_maxwell.a"
  "libmlmd_maxwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_maxwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
