file(REMOVE_RECURSE
  "libmlmd_par.a"
)
