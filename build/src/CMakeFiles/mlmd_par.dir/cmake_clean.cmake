file(REMOVE_RECURSE
  "CMakeFiles/mlmd_par.dir/par/simcomm.cpp.o"
  "CMakeFiles/mlmd_par.dir/par/simcomm.cpp.o.d"
  "libmlmd_par.a"
  "libmlmd_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
