# Empty dependencies file for mlmd_par.
# This may be replaced when dependencies are built.
