file(REMOVE_RECURSE
  "CMakeFiles/mlmd_fft.dir/fft/fft.cpp.o"
  "CMakeFiles/mlmd_fft.dir/fft/fft.cpp.o.d"
  "libmlmd_fft.a"
  "libmlmd_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
