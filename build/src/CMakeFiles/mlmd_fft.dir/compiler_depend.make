# Empty compiler generated dependencies file for mlmd_fft.
# This may be replaced when dependencies are built.
