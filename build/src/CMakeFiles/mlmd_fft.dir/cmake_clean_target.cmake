file(REMOVE_RECURSE
  "libmlmd_fft.a"
)
