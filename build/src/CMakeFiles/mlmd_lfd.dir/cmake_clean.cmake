file(REMOVE_RECURSE
  "CMakeFiles/mlmd_lfd.dir/lfd/band_decomp.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/band_decomp.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/band_domain.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/band_domain.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/density.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/density.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/domain.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/domain.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/dsa.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/dsa.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/fermi.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/fermi.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/hamiltonian.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/hamiltonian.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/io.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/io.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/kin_prop.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/kin_prop.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/nlp_prop.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/nlp_prop.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/propagator.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/propagator.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/vloc.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/vloc.cpp.o.d"
  "CMakeFiles/mlmd_lfd.dir/lfd/wavefunction.cpp.o"
  "CMakeFiles/mlmd_lfd.dir/lfd/wavefunction.cpp.o.d"
  "libmlmd_lfd.a"
  "libmlmd_lfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_lfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
