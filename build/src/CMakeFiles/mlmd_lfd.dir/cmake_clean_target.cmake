file(REMOVE_RECURSE
  "libmlmd_lfd.a"
)
