# Empty dependencies file for mlmd_lfd.
# This may be replaced when dependencies are built.
