
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfd/band_decomp.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/band_decomp.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/band_decomp.cpp.o.d"
  "/root/repo/src/lfd/band_domain.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/band_domain.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/band_domain.cpp.o.d"
  "/root/repo/src/lfd/density.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/density.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/density.cpp.o.d"
  "/root/repo/src/lfd/domain.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/domain.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/domain.cpp.o.d"
  "/root/repo/src/lfd/dsa.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/dsa.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/dsa.cpp.o.d"
  "/root/repo/src/lfd/fermi.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/fermi.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/fermi.cpp.o.d"
  "/root/repo/src/lfd/hamiltonian.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/hamiltonian.cpp.o.d"
  "/root/repo/src/lfd/io.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/io.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/io.cpp.o.d"
  "/root/repo/src/lfd/kin_prop.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/kin_prop.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/kin_prop.cpp.o.d"
  "/root/repo/src/lfd/nlp_prop.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/nlp_prop.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/nlp_prop.cpp.o.d"
  "/root/repo/src/lfd/propagator.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/propagator.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/propagator.cpp.o.d"
  "/root/repo/src/lfd/vloc.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/vloc.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/vloc.cpp.o.d"
  "/root/repo/src/lfd/wavefunction.cpp" "src/CMakeFiles/mlmd_lfd.dir/lfd/wavefunction.cpp.o" "gcc" "src/CMakeFiles/mlmd_lfd.dir/lfd/wavefunction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
