file(REMOVE_RECURSE
  "libmlmd_nnq.a"
)
