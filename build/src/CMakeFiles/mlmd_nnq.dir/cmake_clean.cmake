file(REMOVE_RECURSE
  "CMakeFiles/mlmd_nnq.dir/nnq/allegro.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/allegro.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/angular.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/angular.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/descriptor.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/descriptor.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/fidelity.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/fidelity.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/md_driver.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/md_driver.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/mlp.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/mlp.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/optimizer.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/optimizer.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/qmmm.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/qmmm.cpp.o.d"
  "CMakeFiles/mlmd_nnq.dir/nnq/train.cpp.o"
  "CMakeFiles/mlmd_nnq.dir/nnq/train.cpp.o.d"
  "libmlmd_nnq.a"
  "libmlmd_nnq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_nnq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
