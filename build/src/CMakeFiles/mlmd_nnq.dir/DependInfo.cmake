
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nnq/allegro.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/allegro.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/allegro.cpp.o.d"
  "/root/repo/src/nnq/angular.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/angular.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/angular.cpp.o.d"
  "/root/repo/src/nnq/descriptor.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/descriptor.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/descriptor.cpp.o.d"
  "/root/repo/src/nnq/fidelity.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/fidelity.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/fidelity.cpp.o.d"
  "/root/repo/src/nnq/md_driver.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/md_driver.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/md_driver.cpp.o.d"
  "/root/repo/src/nnq/mlp.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/mlp.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/mlp.cpp.o.d"
  "/root/repo/src/nnq/optimizer.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/optimizer.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/optimizer.cpp.o.d"
  "/root/repo/src/nnq/qmmm.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/qmmm.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/qmmm.cpp.o.d"
  "/root/repo/src/nnq/train.cpp" "src/CMakeFiles/mlmd_nnq.dir/nnq/train.cpp.o" "gcc" "src/CMakeFiles/mlmd_nnq.dir/nnq/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_ferro.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
