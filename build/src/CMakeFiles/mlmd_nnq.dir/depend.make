# Empty dependencies file for mlmd_nnq.
# This may be replaced when dependencies are built.
