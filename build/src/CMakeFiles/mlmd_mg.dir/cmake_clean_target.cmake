file(REMOVE_RECURSE
  "libmlmd_mg.a"
)
