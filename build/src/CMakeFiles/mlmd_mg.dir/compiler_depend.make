# Empty compiler generated dependencies file for mlmd_mg.
# This may be replaced when dependencies are built.
