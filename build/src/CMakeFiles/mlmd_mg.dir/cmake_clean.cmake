file(REMOVE_RECURSE
  "CMakeFiles/mlmd_mg.dir/mg/multigrid.cpp.o"
  "CMakeFiles/mlmd_mg.dir/mg/multigrid.cpp.o.d"
  "libmlmd_mg.a"
  "libmlmd_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
