# Empty compiler generated dependencies file for mlmd_perf.
# This may be replaced when dependencies are built.
