file(REMOVE_RECURSE
  "CMakeFiles/mlmd_perf.dir/perf/machine.cpp.o"
  "CMakeFiles/mlmd_perf.dir/perf/machine.cpp.o.d"
  "libmlmd_perf.a"
  "libmlmd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
