file(REMOVE_RECURSE
  "libmlmd_perf.a"
)
