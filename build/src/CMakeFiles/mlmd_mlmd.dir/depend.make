# Empty dependencies file for mlmd_mlmd.
# This may be replaced when dependencies are built.
