file(REMOVE_RECURSE
  "libmlmd_mlmd.a"
)
