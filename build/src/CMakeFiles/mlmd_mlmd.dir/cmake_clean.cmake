file(REMOVE_RECURSE
  "CMakeFiles/mlmd_mlmd.dir/mlmd/pipeline.cpp.o"
  "CMakeFiles/mlmd_mlmd.dir/mlmd/pipeline.cpp.o.d"
  "libmlmd_mlmd.a"
  "libmlmd_mlmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_mlmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
