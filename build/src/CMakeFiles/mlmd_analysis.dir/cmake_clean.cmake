file(REMOVE_RECURSE
  "CMakeFiles/mlmd_analysis.dir/analysis/rdf.cpp.o"
  "CMakeFiles/mlmd_analysis.dir/analysis/rdf.cpp.o.d"
  "CMakeFiles/mlmd_analysis.dir/analysis/spectrum.cpp.o"
  "CMakeFiles/mlmd_analysis.dir/analysis/spectrum.cpp.o.d"
  "CMakeFiles/mlmd_analysis.dir/analysis/structure_factor.cpp.o"
  "CMakeFiles/mlmd_analysis.dir/analysis/structure_factor.cpp.o.d"
  "libmlmd_analysis.a"
  "libmlmd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
