# Empty compiler generated dependencies file for mlmd_analysis.
# This may be replaced when dependencies are built.
