file(REMOVE_RECURSE
  "libmlmd_analysis.a"
)
