# Empty compiler generated dependencies file for mlmd_mesh.
# This may be replaced when dependencies are built.
