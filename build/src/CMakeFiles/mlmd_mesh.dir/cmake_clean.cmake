file(REMOVE_RECURSE
  "CMakeFiles/mlmd_mesh.dir/mesh/baseline.cpp.o"
  "CMakeFiles/mlmd_mesh.dir/mesh/baseline.cpp.o.d"
  "CMakeFiles/mlmd_mesh.dir/mesh/dcmesh.cpp.o"
  "CMakeFiles/mlmd_mesh.dir/mesh/dcmesh.cpp.o.d"
  "CMakeFiles/mlmd_mesh.dir/mesh/global_potential.cpp.o"
  "CMakeFiles/mlmd_mesh.dir/mesh/global_potential.cpp.o.d"
  "CMakeFiles/mlmd_mesh.dir/mesh/multidomain.cpp.o"
  "CMakeFiles/mlmd_mesh.dir/mesh/multidomain.cpp.o.d"
  "CMakeFiles/mlmd_mesh.dir/mesh/recorder.cpp.o"
  "CMakeFiles/mlmd_mesh.dir/mesh/recorder.cpp.o.d"
  "libmlmd_mesh.a"
  "libmlmd_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
