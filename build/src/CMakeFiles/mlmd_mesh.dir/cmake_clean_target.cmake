file(REMOVE_RECURSE
  "libmlmd_mesh.a"
)
