
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/baseline.cpp" "src/CMakeFiles/mlmd_mesh.dir/mesh/baseline.cpp.o" "gcc" "src/CMakeFiles/mlmd_mesh.dir/mesh/baseline.cpp.o.d"
  "/root/repo/src/mesh/dcmesh.cpp" "src/CMakeFiles/mlmd_mesh.dir/mesh/dcmesh.cpp.o" "gcc" "src/CMakeFiles/mlmd_mesh.dir/mesh/dcmesh.cpp.o.d"
  "/root/repo/src/mesh/global_potential.cpp" "src/CMakeFiles/mlmd_mesh.dir/mesh/global_potential.cpp.o" "gcc" "src/CMakeFiles/mlmd_mesh.dir/mesh/global_potential.cpp.o.d"
  "/root/repo/src/mesh/multidomain.cpp" "src/CMakeFiles/mlmd_mesh.dir/mesh/multidomain.cpp.o" "gcc" "src/CMakeFiles/mlmd_mesh.dir/mesh/multidomain.cpp.o.d"
  "/root/repo/src/mesh/recorder.cpp" "src/CMakeFiles/mlmd_mesh.dir/mesh/recorder.cpp.o" "gcc" "src/CMakeFiles/mlmd_mesh.dir/mesh/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_maxwell.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_par.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
