file(REMOVE_RECURSE
  "libmlmd_grid.a"
)
