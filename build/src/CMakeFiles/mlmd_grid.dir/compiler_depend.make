# Empty compiler generated dependencies file for mlmd_grid.
# This may be replaced when dependencies are built.
