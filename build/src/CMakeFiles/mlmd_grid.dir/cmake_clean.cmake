file(REMOVE_RECURSE
  "CMakeFiles/mlmd_grid.dir/grid/decomposition.cpp.o"
  "CMakeFiles/mlmd_grid.dir/grid/decomposition.cpp.o.d"
  "libmlmd_grid.a"
  "libmlmd_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
