
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qxmd/atoms.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/atoms.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/atoms.cpp.o.d"
  "/root/repo/src/qxmd/neighbor.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/neighbor.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/neighbor.cpp.o.d"
  "/root/repo/src/qxmd/pair_potential.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/pair_potential.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/pair_potential.cpp.o.d"
  "/root/repo/src/qxmd/structures.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/structures.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/structures.cpp.o.d"
  "/root/repo/src/qxmd/surface_hopping.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/surface_hopping.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/surface_hopping.cpp.o.d"
  "/root/repo/src/qxmd/three_body.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/three_body.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/three_body.cpp.o.d"
  "/root/repo/src/qxmd/verlet.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/verlet.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/verlet.cpp.o.d"
  "/root/repo/src/qxmd/xyz.cpp" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/xyz.cpp.o" "gcc" "src/CMakeFiles/mlmd_qxmd.dir/qxmd/xyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlmd_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
