file(REMOVE_RECURSE
  "CMakeFiles/mlmd_qxmd.dir/qxmd/atoms.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/atoms.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/neighbor.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/neighbor.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/pair_potential.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/pair_potential.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/structures.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/structures.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/surface_hopping.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/surface_hopping.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/three_body.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/three_body.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/verlet.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/verlet.cpp.o.d"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/xyz.cpp.o"
  "CMakeFiles/mlmd_qxmd.dir/qxmd/xyz.cpp.o.d"
  "libmlmd_qxmd.a"
  "libmlmd_qxmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_qxmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
