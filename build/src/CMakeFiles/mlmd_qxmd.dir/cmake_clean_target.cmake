file(REMOVE_RECURSE
  "libmlmd_qxmd.a"
)
