# Empty compiler generated dependencies file for mlmd_qxmd.
# This may be replaced when dependencies are built.
