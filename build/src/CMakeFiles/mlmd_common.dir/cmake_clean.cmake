file(REMOVE_RECURSE
  "CMakeFiles/mlmd_common.dir/common/device.cpp.o"
  "CMakeFiles/mlmd_common.dir/common/device.cpp.o.d"
  "CMakeFiles/mlmd_common.dir/common/log.cpp.o"
  "CMakeFiles/mlmd_common.dir/common/log.cpp.o.d"
  "libmlmd_common.a"
  "libmlmd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
