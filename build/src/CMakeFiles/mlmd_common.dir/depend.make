# Empty dependencies file for mlmd_common.
# This may be replaced when dependencies are built.
