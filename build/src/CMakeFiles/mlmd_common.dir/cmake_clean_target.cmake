file(REMOVE_RECURSE
  "libmlmd_common.a"
)
