# Empty compiler generated dependencies file for mlmd_la.
# This may be replaced when dependencies are built.
