
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/eig.cpp" "src/CMakeFiles/mlmd_la.dir/la/eig.cpp.o" "gcc" "src/CMakeFiles/mlmd_la.dir/la/eig.cpp.o.d"
  "/root/repo/src/la/gemm.cpp" "src/CMakeFiles/mlmd_la.dir/la/gemm.cpp.o" "gcc" "src/CMakeFiles/mlmd_la.dir/la/gemm.cpp.o.d"
  "/root/repo/src/la/ortho.cpp" "src/CMakeFiles/mlmd_la.dir/la/ortho.cpp.o" "gcc" "src/CMakeFiles/mlmd_la.dir/la/ortho.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
