file(REMOVE_RECURSE
  "libmlmd_la.a"
)
