file(REMOVE_RECURSE
  "CMakeFiles/mlmd_la.dir/la/eig.cpp.o"
  "CMakeFiles/mlmd_la.dir/la/eig.cpp.o.d"
  "CMakeFiles/mlmd_la.dir/la/gemm.cpp.o"
  "CMakeFiles/mlmd_la.dir/la/gemm.cpp.o.d"
  "CMakeFiles/mlmd_la.dir/la/ortho.cpp.o"
  "CMakeFiles/mlmd_la.dir/la/ortho.cpp.o.d"
  "libmlmd_la.a"
  "libmlmd_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
