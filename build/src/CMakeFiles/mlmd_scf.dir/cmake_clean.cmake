file(REMOVE_RECURSE
  "CMakeFiles/mlmd_scf.dir/scf/dc_scf.cpp.o"
  "CMakeFiles/mlmd_scf.dir/scf/dc_scf.cpp.o.d"
  "libmlmd_scf.a"
  "libmlmd_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlmd_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
