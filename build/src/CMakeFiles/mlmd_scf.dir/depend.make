# Empty dependencies file for mlmd_scf.
# This may be replaced when dependencies are built.
