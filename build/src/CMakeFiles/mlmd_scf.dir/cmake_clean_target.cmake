file(REMOVE_RECURSE
  "libmlmd_scf.a"
)
