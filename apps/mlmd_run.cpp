// mlmd_run — command-line front door to the MLMD library.
//
//   mlmd_run pipeline [--lattice=48] [--sk=3] [--e0=0.08] [--dark]
//       Full Fig. 3 multiscale pipeline; prints Q(t) and the verdict.
//   mlmd_run mesh [--md_steps=6] [--e0=0.05]
//       One DC-MESH domain under a pump pulse; prints per-step stats.
//   mlmd_run scf [--n=16] [--domains=2] [--buffer=2]
//       DC-DFT global-local SCF; prints convergence and band energies.
//   mlmd_run spectrum [--n=10] [--steps=1500]
//       Delta-kick absorption spectrum of one domain.
//
// Every subcommand exits 0 on success so the binary can anchor CI smoke
// runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "mlmd/analysis/spectrum.hpp"
#include "mlmd/common/cli.hpp"
#include "mlmd/ft/fault.hpp"
#include "mlmd/common/units.hpp"
#include "mlmd/mesh/dcmesh.hpp"
#include "mlmd/mlmd/pipeline.hpp"
#include "mlmd/nnq/md_driver.hpp"
#include "mlmd/obs/obs.hpp"
#include "mlmd/par/thread_pool.hpp"
#include "mlmd/par/transport.hpp"
#include "mlmd/scf/dc_scf.hpp"

namespace {

using namespace mlmd;

int run_pipeline_cmd(const Cli& cli) {
  pipeline::PipelineOptions opt;
  opt.lattice = static_cast<std::size_t>(cli.integer("lattice", 48));
  opt.superlattice = static_cast<std::size_t>(cli.integer("sk", 3));
  opt.xs_steps = static_cast<int>(cli.integer("xs_steps", 400));
  opt.pulse.e0 = cli.real("e0", 0.08);
  opt.n_sat = cli.real("n_sat", 0.5);
  const bool dark = cli.flag("dark");

  // Fault-tolerance flags (DESIGN.md Sec. 10).
  opt.checkpoint_every = static_cast<int>(cli.integer("checkpoint-every", 0));
  opt.checkpoint_path = cli.str("checkpoint", "");
  opt.restore_path = cli.str("restore", "");
  if (opt.checkpoint_every > 0 && opt.checkpoint_path.empty())
    opt.checkpoint_path = "mlmd_pipeline.ckpt";
  if (cli.has("guard")) {
    opt.guard.enabled = true;
    opt.guard.policy = ft::parse_policy(cli.str("guard"));
  }
  // --faults=SPEC beats the MLMD_FAULTS environment variable.
  std::string fault_spec = cli.str("faults", "");
  if (fault_spec.empty())
    if (const char* env = std::getenv("MLMD_FAULTS")) fault_spec = env;
  std::optional<ft::ScopedFaults> faults;
  if (!fault_spec.empty()) faults.emplace(fault_spec);

  try {
    auto res = pipeline::run_pipeline(opt, dark);
    std::printf("n_exc = %.4f, w = %.3f\n", res.n_exc, res.w);
    std::printf("Q: %.3f -> %.3f (%s run)\n", res.q_initial, res.q_final,
                dark ? "dark" : "pumped");
    std::printf("switched: %s\n", res.switched ? "yes" : "no");
    if (res.start_step > 0 || res.checkpoints_written > 0 ||
        res.rollbacks > 0 || res.degraded)
      std::printf("ft: start_step=%ld checkpoints=%d rollbacks=%d "
                  "degraded=%s\n",
                  res.start_step, res.checkpoints_written, res.rollbacks,
                  res.degraded ? "yes" : "no");
    return 0;
  } catch (const ft::GuardTripped& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}

int run_mesh_cmd(const Cli& cli) {
  grid::Grid3 g{10, 10, 10, 0.7, 0.7, 0.7};
  std::vector<lfd::Ion> ions = {
      {0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.0, 1.6, 2.0}};
  mesh::MeshOptions opt;
  opt.nqd_per_md = static_cast<int>(cli.integer("nqd", 40));
  mesh::DcMeshDomain dom(g, 6, 3, ions, opt);
  maxwell::Pulse pulse;
  pulse.e0 = cli.real("e0", 0.05);
  pulse.omega = cli.real("omega", 0.12);
  const int steps = static_cast<int>(cli.integer("md_steps", 6));
  pulse.t0 = 0.5 * steps * dom.md_dt();
  std::printf("%-8s %-10s %-12s\n", "t[fs]", "n_exc", "E_el[Ha]");
  for (int s = 0; s < steps; ++s) {
    auto st = dom.md_step(&pulse);
    std::printf("%-8.3f %-10.5f %-12.6f\n",
                dom.time() * units::femtosecond_per_au, st.n_exc,
                st.electron_energy);
  }
  return 0;
}

int run_scf_cmd(const Cli& cli) {
  const auto n = static_cast<std::size_t>(cli.integer("n", 16));
  const int d = static_cast<int>(cli.integer("domains", 2));
  grid::Grid3 g{n, n, n, 0.8, 0.8, 0.8};
  grid::DcDecomposition dec(g, d, d, d,
                            static_cast<std::size_t>(cli.integer("buffer", 2)));
  std::vector<lfd::Ion> ions;
  for (int a = 0; a < dec.ndomains(); ++a) {
    const auto& dom = dec.domain(a);
    ions.push_back({(static_cast<double>(dom.core0[0]) + 0.5 * dom.coreN[0]) * g.hx,
                    (static_cast<double>(dom.core0[1]) + 0.5 * dom.coreN[1]) * g.hy,
                    (static_cast<double>(dom.core0[2]) + 0.5 * dom.coreN[2]) * g.hz,
                    2.5, 1.5, 2.0});
  }
  scf::ScfOptions opt;
  opt.max_outer = static_cast<int>(cli.integer("outer", 40));
  opt.tol = cli.real("tol", 3e-3);
  scf::DcScf scf(dec, ions, opt);
  auto res = scf.run();
  std::printf("converged: %s (%d iters, residual %.2e), band sum %.5f Ha\n",
              res.converged ? "yes" : "no", res.outer_iters, res.density_residual,
              res.total_energy);
  return res.converged ? 0 : 2;
}

int run_spectrum_cmd(const Cli& cli) {
  const auto n = static_cast<std::size_t>(cli.integer("n", 10));
  grid::Grid3 g{n, n, n, 0.7, 0.7, 0.7};
  lfd::LfdOptions opt;
  opt.dt_qd = 0.08;
  opt.nlp_every = 0;
  lfd::LfdDomain<double> dom(g, 6, opt);
  dom.initialize({{0.5 * g.lx(), 0.5 * g.ly(), 0.5 * g.lz(), 2.5, 1.6, 2.0}}, 3);

  const double kick = cli.real("kick", 1e-3);
  auto& w = dom.wave();
  for (std::size_t x = 0; x < g.nx; ++x)
    for (std::size_t y = 0; y < g.ny; ++y)
      for (std::size_t z = 0; z < g.nz; ++z) {
        const std::complex<double> ph(std::cos(kick * y * g.hy),
                                      std::sin(kick * y * g.hy));
        for (std::size_t s = 0; s < 6; ++s) w.at(g.index(x, y, z), s) *= ph;
      }
  std::vector<double> dipole;
  const double a0[3] = {0, 0, 0};
  const int steps = static_cast<int>(cli.integer("steps", 1500));
  for (int s = 0; s < steps; ++s) {
    dom.qd_step(a0);
    dipole.push_back(dom.dipole()[1]);
  }
  auto spec = analysis::absorption_spectrum(dipole, opt.dt_qd);
  std::printf("dominant transition: %.3f eV\n",
              analysis::dominant_frequency(spec) * units::ev_per_hartree);
  return 0;
}

int run_nnqmd_cmd(const Cli& cli) {
  // Train an Allegro-style potential on LJ reference data and run
  // thermostatted MD with it; saves the model when --model is given.
  auto base = qxmd::make_cubic_lattice(3, 3, 3, 4.6, 200.0);
  auto basis = nnq::RadialBasis::make(8, 1.5, 7.0, 1.0);
  qxmd::LjParams lj;
  lj.epsilon = 0.01;
  lj.sigma = 3.8;
  lj.rc = 8.0;
  auto data = nnq::make_lj_dataset(base, basis, lj, 60, 0.22, 77);
  nnq::Mlp net({basis.size(), 24, 16, 1}, 31);
  nnq::TrainOptions topt;
  topt.epochs = static_cast<int>(cli.integer("epochs", 150));
  auto hist = nnq::train_energy(net, data, topt);
  std::printf("train loss: %.3e -> %.3e\n", hist.epoch_loss.front(),
              hist.epoch_loss.back());
  if (cli.has("model")) net.save(cli.str("model"));

  nnq::AtomModel model(basis, std::move(net));
  qxmd::thermalize(base, cli.real("kt", 0.001), 5);
  nnq::MdOptions mopt;
  mopt.dt = cli.real("dt", 6.0);
  mopt.langevin_kt = cli.real("kt", 0.001);
  // Strong coupling: the energy-only-trained demo model has residual
  // force error that would otherwise slowly heat the run.
  mopt.langevin_gamma = cli.real("gamma", 0.03);
  nnq::NnqmdDriver driver(model, nullptr, base, mopt);
  const int steps = static_cast<int>(cli.integer("md_steps", 200));
  for (int s = 0; s < steps; ++s) driver.step();
  std::printf("final temperature: %.5f Ha (%ld steps)\n",
              driver.atoms().temperature(), driver.steps());
  return 0;
}

void usage() {
  std::puts(
      "usage: mlmd_run <pipeline|mesh|scf|spectrum|nnqmd> [--key=value ...]\n"
      "global options:\n"
      "  --threads=N   intra-node ThreadPool size (default: MLMD_NUM_THREADS\n"
      "                or hardware concurrency; 1 = deterministic serial)\n"
      "  --trace=PATH  write a Chrome trace-event JSON of kernel/phase/comm\n"
      "                spans to PATH (or set MLMD_TRACE=PATH); load it in\n"
      "                chrome://tracing or Perfetto\n"
      "  --transport=inproc|shm\n"
      "                SimComm backend: rank threads in-process (default)\n"
      "                or forked processes over shared memory (or set\n"
      "                MLMD_TRANSPORT)\n"
      "  --comm=sync|async\n"
      "                stepping-loop communication mode: fully blocking, or\n"
      "                boundary exchanges overlapped with interior compute\n"
      "                (default; bit-identical results; or set MLMD_COMM)\n"
      "pipeline robustness options (DESIGN.md Sec. 10):\n"
      "  --faults=SPEC           inject deterministic faults, e.g.\n"
      "                          'nan_force@step=25;exchange_fail@step=10,\n"
      "                          p=0.5,seed=7' (or set MLMD_FAULTS)\n"
      "  --guard=POLICY          per-step sentinel: abort|rollback|degrade\n"
      "  --checkpoint=PATH       checkpoint file (default\n"
      "                          mlmd_pipeline.ckpt)\n"
      "  --checkpoint-every=N    write a checkpoint every N stage-3 steps\n"
      "  --restore=PATH          resume stage 3 from a checkpoint\n"
      "unknown --options are rejected; run with no arguments for this text");
}

/// Accepted --keys per subcommand (first the global ones).
std::vector<std::string> known_keys(const std::string& cmd) {
  std::vector<std::string> keys = {"threads", "trace", "transport", "comm"};
  auto add = [&keys](std::initializer_list<const char*> more) {
    for (const char* k : more) keys.emplace_back(k);
  };
  if (cmd == "pipeline")
    add({"lattice", "sk", "xs_steps", "e0", "n_sat", "dark", "faults",
         "guard", "checkpoint", "checkpoint-every", "restore"});
  else if (cmd == "mesh")
    add({"nqd", "e0", "omega", "md_steps"});
  else if (cmd == "scf")
    add({"n", "domains", "buffer", "outer", "tol"});
  else if (cmd == "spectrum")
    add({"n", "steps", "kick"});
  else if (cmd == "nnqmd")
    add({"epochs", "model", "kt", "dt", "gamma", "md_steps"});
  return keys;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  Cli cli(argc, argv);
  if (!cli.check_known(known_keys(cmd),
                       "run 'mlmd_run' with no arguments for usage"))
    return 1;
  int rc = 1;
  try {
    if (cli.has("threads"))
      par::ThreadPool::set_global_threads(
          static_cast<int>(cli.integer("threads", 0)));
    par::set_default_transport(cli.choice("transport", par::kTransportChoices,
                                          par::default_transport()));
    par::set_default_comm_mode(cli.choice("comm", par::kCommModeChoices,
                                          par::default_comm_mode()));
    const std::string trace_path =
        obs::init_tracing(cli.has("trace") ? cli.str("trace") : "");
    if (cmd == "pipeline") rc = run_pipeline_cmd(cli);
    else if (cmd == "mesh") rc = run_mesh_cmd(cli);
    else if (cmd == "scf") rc = run_scf_cmd(cli);
    else if (cmd == "spectrum") rc = run_spectrum_cmd(cli);
    else if (cmd == "nnqmd") rc = run_nnqmd_cmd(cli);
    else usage();
    if (!obs::finish_tracing(trace_path) && rc == 0) rc = 1;
  } catch (const std::invalid_argument& e) {
    // Malformed option values (strict Cli numeric parsing, bad
    // --transport) are usage errors, not crashes.
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "run 'mlmd_run' with no arguments for usage\n");
    return 1;
  }
  return rc;
}
