#!/bin/sh
# Graceful-drain acceptance test (ISSUE 10): SIGTERM the mlmd_serve
# daemon mid-load (via the deterministic --term-at-round hook), require
# it to exit 0 with every live session checkpointed, then rerun the same
# command and require every result file to be byte-identical to an
# uninterrupted reference run.
# Usage: serve_drain_test.sh <mlmd_serve>
set -eu

SERVE=${1:?usage: serve_drain_test.sh <path-to-mlmd_serve>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mlmd_serve_drain.XXXXXX")
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT
trap 'cleanup; trap - EXIT; exit 1' INT TERM HUP

FLAGS="--tenants=4 --per-tenant=2 --lattice=16 --xs-steps=40 \
  --inflight=8 --checkpoint-every=5 --threads=2"

# Reference: uninterrupted run.
"$SERVE" $FLAGS --out="$WORK/ref" --checkpoint-dir="$WORK/ref_ckpt" \
  > "$WORK/ref.log"

# Run 1: SIGTERM raised deterministically mid-load. Unlike the SIGKILL of
# the warm-restart test, a drain is graceful: admission closes, live
# sessions checkpoint, and the daemon must exit 0.
rc=0
"$SERVE" $FLAGS --out="$WORK/dr" --checkpoint-dir="$WORK/dr_ckpt" \
  --term-at-round=20 > "$WORK/run1.log" 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited non-zero (rc=$rc)" >&2
  cat "$WORK/run1.log" >&2
  exit 1
fi
if ! grep -q "drained" "$WORK/run1.log"; then
  echo "FAIL: run 1 drained nothing (term-at-round too late?)" >&2
  cat "$WORK/run1.log" >&2
  exit 1
fi

# Drained sessions must have left their checkpoints behind.
if [ -z "$(ls "$WORK/dr_ckpt" 2>/dev/null)" ]; then
  echo "FAIL: drain kept no checkpoints" >&2
  exit 1
fi

# Run 2: same command, no SIGTERM — skips finished scenarios, resumes the
# drained ones from their kept checkpoints.
"$SERVE" $FLAGS --out="$WORK/dr" --checkpoint-dir="$WORK/dr_ckpt" \
  > "$WORK/run2.log"

for id in 1 2 3 4 5 6 7 8; do
  if [ ! -f "$WORK/dr/result-$id.txt" ]; then
    echo "FAIL: missing result-$id.txt after drained rerun" >&2
    exit 1
  fi
  if ! cmp -s "$WORK/ref/result-$id.txt" "$WORK/dr/result-$id.txt"; then
    echo "FAIL: result-$id.txt differs from uninterrupted reference" >&2
    diff "$WORK/ref/result-$id.txt" "$WORK/dr/result-$id.txt" >&2 || true
    exit 1
  fi
done

echo "PASS: SIGTERM drain exits 0 and rerun is bitwise-identical"
