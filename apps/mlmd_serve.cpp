// mlmd_serve — the multi-tenant serving daemon (DESIGN.md Sec. 14).
//
// Runs a deterministic synthetic workload through the mlmd::serve
// scheduler: --tenants clients each submit --per-tenant kNeural pipeline
// scenarios (alternating pumped/dark, per-request pulse amplitudes) that
// interleave on one process, share one copy of the GS/XS model weights,
// and batch their force inference across requests. Each completed
// scenario's physics results are written to --out/result-<id>.txt in
// hexfloat (bit-exact across runs), and with --checkpoint-dir a killed
// daemon warm-restarts: re-running the same command skips scenarios whose
// result files exist and resumes the rest from their checkpoints —
// results are bitwise-identical to an uninterrupted run (tested by
// serve_warm_restart_test.sh and the ServeFork gtests).
//
// Operational robustness (DESIGN.md Sec. 15): --deadline-ms bounds every
// scenario (expired ones are reaped with their checkpoint kept, so a
// rerun resumes them); SIGTERM drains gracefully — admission closes,
// every live session checkpoints, obs flushes, and the daemon exits 0;
// --shed-watermark-ms sheds load once the p95 queue wait crosses it.
//
//   mlmd_serve [--tenants=4] [--per-tenant=2] [--out=DIR]
//              [--checkpoint-dir=DIR] [--checkpoint-every=10]
//              [--lattice=16] [--xs-steps=40] [--inflight=8]
//              [--queue-cap=64] [--quota=0] [--batch-max=8] [--batch=1]
//              [--verify-batching] [--threads=N] [--trace=PATH]
//              [--deadline-ms=MS] [--shed-watermark-ms=MS]
//              [--kill-at-round=N]   (test hook: SIGKILL mid-load)
//              [--term-at-round=N]   (test hook: SIGTERM mid-load)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mlmd/common/cli.hpp"
#include "mlmd/ft/io.hpp"
#include "mlmd/nnq/train.hpp"
#include "mlmd/obs/obs.hpp"
#include "mlmd/par/thread_pool.hpp"
#include "mlmd/serve/server.hpp"

namespace {

using namespace mlmd;

/// SIGTERM latch: the handler only sets the flag; the drain watcher
/// thread does the actual work (drain() takes locks a handler must not).
volatile std::sig_atomic_t g_sigterm = 0;

std::string result_path(const std::string& dir, long id) {
  return dir + "/result-" + std::to_string(id) + ".txt";
}

/// Physics fields only, printed as hexfloats: byte-identical whenever the
/// scenario's dynamics are bit-identical. Fault-tolerance bookkeeping
/// (start_step, checkpoints_written) legitimately differs across a warm
/// restart and is deliberately excluded.
void write_result(const std::string& dir, const serve::Request& req,
                  const pipeline::PipelineResult& res) {
  ft::AtomicFile out(result_path(dir, req.id), "w");
  std::FILE* fp = out.get();
  std::fprintf(fp, "id %ld\ntenant %d\ndark %d\n", req.id, req.tenant,
               req.dark ? 1 : 0);
  std::fprintf(fp, "n_exc %a\nw %a\nq_initial %a\nq_final %a\nswitched %d\n",
               res.n_exc, res.w, res.q_initial, res.q_final,
               res.switched ? 1 : 0);
  std::fprintf(fp, "q_history %zu", res.q_history.size());
  for (double q : res.q_history) std::fprintf(fp, " %a", q);
  std::fprintf(fp, "\n");
  out.commit();
}

/// The deterministic synthetic workload: scenario ids, tenants and
/// options are pure functions of the flags, so a restarted daemon
/// regenerates exactly the work a killed one was doing.
std::vector<serve::Request> make_workload(int tenants, int per_tenant,
                                          std::size_t lattice, int xs_steps) {
  std::vector<serve::Request> reqs;
  for (int t = 0; t < tenants; ++t) {
    for (int r = 0; r < per_tenant; ++r) {
      serve::Request req;
      req.tenant = t;
      req.id = static_cast<long>(t) * per_tenant + r + 1;
      req.dark = (r % 2) == 1;
      req.gs_model = "gs";
      req.xs_model = "xs";
      auto& opt = req.opt;
      opt.backend = pipeline::ForceBackend::kNeural;
      opt.lattice = lattice;
      opt.superlattice = 1;
      opt.relax_steps = 60;
      opt.grid_n = 8;
      opt.norb = 4;
      opt.nfilled = 2;
      opt.mesh_md_steps = 2;
      opt.mesh.nqd_per_md = 10;
      opt.mesh.lfd.dt_qd = 0.06;
      opt.xs_steps = xs_steps;
      opt.record_every = 10;
      opt.pulse.e0 = 0.10 + 0.01 * static_cast<double>(r % 5);
      opt.pulse.omega = 0.15;
      opt.pulse.fwhm = 30.0;
      opt.n_sat = 0.02;
      reqs.push_back(std::move(req));
    }
  }
  return reqs;
}

void usage() {
  std::puts(
      "usage: mlmd_serve [--key=value ...]\n"
      "  --tenants=N --per-tenant=M   synthetic workload shape (default 4x2)\n"
      "  --out=DIR                    result files (default mlmd_serve_out)\n"
      "  --checkpoint-dir=DIR         enable warm restart via checkpoints\n"
      "  --checkpoint-every=N         steps between checkpoints (default 10)\n"
      "  --lattice=N --xs-steps=N     scenario size (default 16 / 40)\n"
      "  --inflight=N --queue-cap=N   scheduler slots / queue bound\n"
      "  --quota=N                    per-tenant queued+in-flight cap (0=off)\n"
      "  --batch=0|1 --batch-max=N    cross-request inference batching\n"
      "  --verify-batching            memcmp batched vs unbatched forces\n"
      "  --threads=N --trace=PATH     ThreadPool size / Chrome trace\n"
      "  --deadline-ms=MS             per-request deadline (reaped with\n"
      "                               checkpoint kept; rerun resumes); also\n"
      "                               MLMD_SERVE_DEADLINE_MS (flag wins)\n"
      "  --shed-watermark-ms=MS       reject new work while p95 queue wait\n"
      "                               exceeds MS (load shedding)\n"
      "  --kill-at-round=N            test hook: SIGKILL at scheduler round N\n"
      "  --term-at-round=N            test hook: SIGTERM at scheduler round N\n"
      "                               (graceful drain, exit 0)");
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.flag("help")) {
    usage();
    return 0;
  }
  if (!cli.check_known(
          {"tenants", "per-tenant", "out", "checkpoint-dir",
           "checkpoint-every", "lattice", "xs-steps", "inflight", "queue-cap",
           "quota", "batch", "batch-max", "verify-batching", "threads",
           "trace", "deadline-ms", "shed-watermark-ms", "kill-at-round",
           "term-at-round", "help"},
          "run 'mlmd_serve --help' for usage"))
    return 1;

  try {
    if (cli.has("threads"))
      par::ThreadPool::set_global_threads(
          static_cast<int>(cli.integer("threads", 0)));
    const std::string trace_path =
        obs::init_tracing(cli.has("trace") ? cli.str("trace") : "");

    const int tenants = static_cast<int>(cli.integer("tenants", 4));
    const int per_tenant = static_cast<int>(cli.integer("per-tenant", 2));
    const auto lattice =
        static_cast<std::size_t>(cli.integer("lattice", 16));
    const int xs_steps = static_cast<int>(cli.integer("xs-steps", 40));
    const std::string out_dir = cli.str("out", "mlmd_serve_out");
    std::filesystem::create_directories(out_dir);

    // One copy of the weights serves every tenant. Deterministic tiny
    // training so a restarted daemon rebuilds the identical models.
    auto registry = std::make_shared<serve::ModelRegistry>();
    {
      auto gs_data = nnq::sample_ferro_dataset(8, 8, 0.05, 10, 5, 0.0, 81);
      auto xs_data = nnq::sample_ferro_dataset(8, 8, 0.05, 10, 5, 0.45, 82);
      auto gs = std::make_shared<nnq::LatticeModel>(
          std::vector<std::size_t>{12, 12}, 5);
      auto xs = std::make_shared<nnq::LatticeModel>(
          std::vector<std::size_t>{12, 12}, 6);
      nnq::TrainOptions topt;
      topt.epochs = 10;
      nnq::train_energy(gs->net(), gs_data, topt);
      nnq::train_energy(xs->net(), xs_data, topt);
      registry->add("gs", std::move(gs));
      registry->add("xs", std::move(xs));
    }

    serve::ServerOptions sopt;
    sopt.queue_capacity = static_cast<std::size_t>(cli.integer(
        "queue-cap", static_cast<long>(tenants) * per_tenant + 8));
    sopt.tenant_quota = static_cast<std::size_t>(cli.integer("quota", 0));
    sopt.max_inflight = static_cast<std::size_t>(cli.integer("inflight", 8));
    sopt.batch_max = static_cast<std::size_t>(cli.integer("batch-max", 8));
    sopt.batch = cli.integer("batch", 1) != 0;
    sopt.verify_batching = cli.flag("verify-batching");
    sopt.checkpoint_dir = cli.str("checkpoint-dir", "");
    sopt.checkpoint_every =
        static_cast<int>(cli.integer("checkpoint-every", 10));
    sopt.kill_at_round = cli.integer("kill-at-round", 0);
    sopt.term_at_round = cli.integer("term-at-round", 0);
    sopt.shed_watermark_ms = cli.real("shed-watermark-ms", 0.0);
    double deadline_ms = cli.real("deadline-ms", -1.0);
    if (deadline_ms < 0.0) {
      // Environment fallback, flag wins (strict parse, like the flags).
      if (const char* e = std::getenv("MLMD_SERVE_DEADLINE_MS"); e && *e) {
        const std::string value(e);
        std::size_t used = 0;
        try {
          deadline_ms = std::stod(value, &used);
        } catch (...) {
          used = 0;
        }
        if (used != value.size())
          throw std::invalid_argument("MLMD_SERVE_DEADLINE_MS: bad value '" +
                                      value + "'");
      }
    }
    if (deadline_ms > 0.0) sopt.default_deadline_ms = deadline_ms;

    serve::Server server(sopt, registry);
    server.start();

    // SIGTERM = graceful drain: the handler latches, this watcher drains
    // (checkpoint everything, close admission), and main falls through
    // its wait loop to exit 0 — the orchestrator contract.
    std::signal(SIGTERM, [](int) { g_sigterm = 1; });
    std::atomic<bool> watcher_stop{false};
    std::thread term_watcher([&] {
      while (!watcher_stop.load(std::memory_order_relaxed)) {
        if (g_sigterm) {
          server.drain();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    auto workload = make_workload(tenants, per_tenant, lattice, xs_steps);
    std::vector<const serve::Request*> submitted;
    int skipped = 0;
    for (auto& req : workload) {
      // Warm restart: scenarios that already produced results are done.
      if (std::filesystem::exists(result_path(out_dir, req.id))) {
        ++skipped;
        continue;
      }
      serve::Request copy = req;
      auto ticket = server.submit(std::move(copy));
      if (!ticket.accepted) {
        std::fprintf(stderr, "request %ld rejected: %s\n", req.id,
                     serve::reject_name(ticket.reason));
        continue;
      }
      submitted.push_back(&req);
    }

    int failed = 0, drained = 0, expired = 0;
    for (const serve::Request* req : submitted) {
      auto out = server.wait(req->id);
      if (out.ok) {
        write_result(out_dir, *req, out.result);
        std::printf(
            "id=%ld tenant=%d %s: n_exc=%.4f w=%.3f Q %.3f -> %.3f%s\n",
            req->id, req->tenant, req->dark ? "dark" : "pumped",
            out.result.n_exc, out.result.w, out.result.q_initial,
            out.result.q_final, out.result.switched ? " SWITCHED" : "");
        continue;
      }
      if (out.reject == serve::Reject::kStopped) {
        // Drained at SIGTERM with its checkpoint kept: degraded service,
        // not an error — a rerun resumes it bit-identically.
        ++drained;
        continue;
      }
      if (out.reject == serve::Reject::kDeadline) {
        ++expired;
        std::fprintf(stderr,
                     "request %ld deadline exceeded (checkpoint kept)\n",
                     req->id);
        continue;
      }
      ++failed;
      std::fprintf(stderr, "request %ld failed: %s\n", req->id,
                   out.error.c_str());
    }
    watcher_stop.store(true, std::memory_order_relaxed);
    term_watcher.join();
    server.stop();

    // Server::stats() lumps every !ok outcome into failed; the summary
    // uses the loop's taxonomy so drained/expired don't read as failures.
    const auto st = server.stats();
    std::printf("served %ld scenarios (%d skipped, %d failed)\n",
                st.completed, skipped, failed);
    if (drained > 0)
      std::printf("drained %d scenarios (checkpoints kept; rerun resumes)\n",
                  drained);
    if (expired > 0)
      std::printf("%d scenarios hit their deadline (checkpoints kept)\n",
                  expired);
    int rc = failed == 0 ? 0 : 2;
    if (!obs::finish_tracing(trace_path) && rc == 0) rc = 1;
    return rc;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "run 'mlmd_serve --help' for usage\n");
    return 1;
  }
}
