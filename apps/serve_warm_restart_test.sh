#!/bin/sh
# Warm-restart acceptance test (ISSUE 9): SIGKILL the mlmd_serve daemon
# mid-load, restart it with the same checkpoint/result directories, and
# require every scenario's result file to be byte-identical to an
# uninterrupted reference run. Usage: serve_warm_restart_test.sh <mlmd_serve>
set -eu

SERVE=${1:?usage: serve_warm_restart_test.sh <path-to-mlmd_serve>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mlmd_serve_wr.XXXXXX")
# EXIT alone misses signal deaths in some shells (dash does not run the
# EXIT trap on INT/TERM), leaving checkpoint dirs behind; trap the
# signals too and re-raise the exit so ctest still sees the failure.
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT
trap 'cleanup; trap - EXIT; exit 1' INT TERM HUP

FLAGS="--tenants=4 --per-tenant=2 --lattice=16 --xs-steps=40 \
  --inflight=8 --checkpoint-every=5 --threads=2"

# Reference: uninterrupted run.
"$SERVE" $FLAGS --out="$WORK/ref" --checkpoint-dir="$WORK/ref_ckpt" \
  > "$WORK/ref.log"

# Run 1: killed deterministically mid-load by the scheduler itself.
rc=0
"$SERVE" $FLAGS --out="$WORK/wr" --checkpoint-dir="$WORK/wr_ckpt" \
  --kill-at-round=20 > "$WORK/run1.log" 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "FAIL: first run was expected to be killed (rc=0)" >&2
  exit 1
fi

# In-flight work must have left checkpoints behind.
if [ -z "$(ls "$WORK/wr_ckpt" 2>/dev/null)" ]; then
  echo "FAIL: no checkpoints written before the kill" >&2
  exit 1
fi

# Run 2: same command, no kill — skips finished scenarios, resumes the rest.
"$SERVE" $FLAGS --out="$WORK/wr" --checkpoint-dir="$WORK/wr_ckpt" \
  > "$WORK/run2.log"

# Resumption must actually have happened (run 2 reports restored sessions
# implicitly: every result file exists now).
for id in 1 2 3 4 5 6 7 8; do
  if [ ! -f "$WORK/wr/result-$id.txt" ]; then
    echo "FAIL: missing result-$id.txt after restart" >&2
    exit 1
  fi
  if ! cmp -s "$WORK/ref/result-$id.txt" "$WORK/wr/result-$id.txt"; then
    echo "FAIL: result-$id.txt differs from uninterrupted reference" >&2
    diff "$WORK/ref/result-$id.txt" "$WORK/wr/result-$id.txt" >&2 || true
    exit 1
  fi
done

echo "PASS: warm restart bitwise-identical across SIGKILL"
